package netflow

import (
	"testing"

	"netsamp/internal/packet"
	"netsamp/internal/rng"
)

// coordKey builds a distinct flow key for index i.
func coordKey(i int) packet.FiveTuple {
	return packet.FiveTuple{
		Src: packet.Addr(0x0a000000 + i), Dst: packet.Addr(0xc0a80000 + i*7),
		SrcPort: uint16(1024 + i), DstPort: 443, Proto: packet.ProtoTCP,
	}
}

func TestNewCoordConfigValidation(t *testing.T) {
	classify := func(packet.FiveTuple) (int, bool) { return 0, true }
	full := []packet.HashRange{{Lo: 0, Hi: ^uint64(0)}}
	if _, err := NewCoordConfig(nil, full, []float64{0.5}); err == nil {
		t.Error("nil classifier accepted")
	}
	if _, err := NewCoordConfig(classify, full, []float64{0.5, 0.5}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := NewCoordConfig(classify, nil, nil); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := NewCoordConfig(classify, full, []float64{1.5}); err == nil {
		t.Error("coin > 1 accepted")
	}
	if _, err := NewCoordConfig(classify, []packet.HashRange{packet.EmptyHashRange}, []float64{0.5}); err == nil {
		t.Error("positive coin with empty range accepted")
	}
	if _, err := NewCoordConfig(classify, full, []float64{0.5}); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestCoordDecide(t *testing.T) {
	// Pair 0: this monitor owns the lower half of the hash space at coin
	// 0.004. Pair 1: the monitor owns nothing. Unclassified flows fall
	// back to the base rate.
	classify := func(k packet.FiveTuple) (int, bool) {
		switch k.DstPort {
		case 1:
			return 0, true
		case 2:
			return 1, true
		}
		return 0, false
	}
	half := uint64(1) << 63
	cc, err := NewCoordConfig(classify,
		[]packet.HashRange{{Lo: 0, Hi: half - 1}, packet.EmptyHashRange},
		[]float64{0.004, 0})
	if err != nil {
		t.Fatal(err)
	}
	// Sweep keys of pair 0: owned ones get the coin, the others are
	// refused outright (another monitor's flows).
	owned, refused := 0, 0
	for i := 0; i < 2000; i++ {
		k := coordKey(i)
		k.DstPort = 1
		rate, consider := cc.Decide(k, 0.1)
		inRange := k.FastHash() < half
		switch {
		case inRange && (!consider || rate != 0.004):
			t.Fatalf("owned key %d: rate=%v consider=%v", i, rate, consider)
		case !inRange && consider:
			t.Fatalf("foreign key %d considered", i)
		}
		if inRange {
			owned++
		} else {
			refused++
		}
	}
	if owned == 0 || refused == 0 {
		t.Fatalf("degenerate hash split: %d owned, %d refused", owned, refused)
	}
	// Pair 1: empty range refuses everything.
	k := coordKey(7)
	k.DstPort = 2
	if _, consider := cc.Decide(k, 0.1); consider {
		t.Fatal("empty range considered a flow")
	}
	// Unclassified: base rate passes through.
	k = coordKey(8)
	k.DstPort = 9
	if rate, consider := cc.Decide(k, 0.1); !consider || rate != 0.1 {
		t.Fatalf("unclassified flow: rate=%v consider=%v", rate, consider)
	}
}

// TestCoordinatedTablesPartitionFlows is the end-to-end partition
// property: two monitors on one pair's path, configured with
// complementary ranges at coin 1, together sample every flow of the
// pair exactly once — no double-sample, no gap.
func TestCoordinatedTablesPartitionFlows(t *testing.T) {
	classify := func(k packet.FiveTuple) (int, bool) { return 0, true }
	ranges := make([]packet.HashRange, 2)
	packet.PartitionHashSpace(ranges, []float64{0.003, 0.001})
	mk := func(id uint16, r packet.HashRange) *FlowTable {
		cc, err := NewCoordConfig(classify, []packet.HashRange{r}, []float64{1})
		if err != nil {
			t.Fatal(err)
		}
		return NewFlowTable(id, Config{
			SamplingRate: 0.5, IdleTimeout: 30, Coordination: cc,
		}, rng.New(uint64(id)))
	}
	m1 := mk(1, ranges[0])
	m2 := mk(2, ranges[1])
	for i := 0; i < 3000; i++ {
		k := coordKey(i)
		s1, _ := m1.Observe(k, 100, 0)
		s2, _ := m2.Observe(k, 100, 0)
		if s1 && s2 {
			t.Fatalf("flow %d sampled by both monitors", i)
		}
		if !s1 && !s2 {
			t.Fatalf("flow %d sampled by neither monitor (coin 1)", i)
		}
	}
	st1, st2 := m1.Stats(), m2.Stats()
	if st1.SampledPackets+st2.SampledPackets != 3000 {
		t.Fatalf("sampled %d+%d, want 3000", st1.SampledPackets, st2.SampledPackets)
	}
	// The split should roughly follow the 3:1 share ratio.
	if st1.SampledPackets < st2.SampledPackets {
		t.Fatalf("range widths ignored: %d vs %d", st1.SampledPackets, st2.SampledPackets)
	}
}

// TestCoordinationNilKeepsIndependentPath: a table without a CoordConfig
// must behave exactly as before — one Bernoulli draw per packet.
func TestCoordinationNilKeepsIndependentPath(t *testing.T) {
	plain := NewFlowTable(1, Config{SamplingRate: 0.25, IdleTimeout: 30}, rng.New(99))
	var sampledPlain []bool
	for i := 0; i < 500; i++ {
		s, _ := plain.Observe(coordKey(i), 100, 0)
		sampledPlain = append(sampledPlain, s)
	}
	again := NewFlowTable(1, Config{SamplingRate: 0.25, IdleTimeout: 30, Coordination: nil}, rng.New(99))
	for i := 0; i < 500; i++ {
		if s, _ := again.Observe(coordKey(i), 100, 0); s != sampledPlain[i] {
			t.Fatalf("packet %d: decision changed with nil Coordination", i)
		}
	}
}

func TestNewCoordinatedEstimatorClampsRho(t *testing.T) {
	classify := func(k packet.FiveTuple) (int, bool) { return 0, true }
	est, err := NewCoordinatedEstimator(300, []float64{1.4}, classify)
	if err != nil {
		t.Fatal(err)
	}
	// A clamped rho of 1 renormalizes counts by exactly 1.
	est.Add(packet.Record{Key: coordKey(1), Packets: 50, Start: 0, End: 10})
	bins := est.Estimates()
	if len(bins) != 1 {
		t.Fatalf("%d bins", len(bins))
	}
	if bins[0].Estimate[0] != 50 {
		t.Fatalf("estimate %v, want 50 (rho clamped to 1)", bins[0].Estimate[0])
	}
}
