package netflow

import (
	"bytes"
	"io"
	"testing"

	"netsamp/internal/packet"
)

func TestRecordArchiveRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewRecordWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var want []packet.Record
	for i := 0; i < 137; i++ {
		rec := packet.Record{
			Key:       key(byte(i)),
			MonitorID: uint16(i % 7),
			Packets:   uint64(i * 11),
			Bytes:     uint64(i * 1500),
			Start:     uint32(i),
			End:       uint32(i + 30),
		}
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
		want = append(want, rec)
	}
	if w.Count() != 137 {
		t.Fatalf("Count = %d", w.Count())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := NewRecordReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var got []packet.Record
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, rec)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d records, wrote %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestRecordArchiveEmpty(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewRecordWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewRecordReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("Next on empty archive = %v", err)
	}
}

func TestRecordArchiveBadMagic(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewRecordWriter(&buf)
	w.Write(packet.Record{Key: key(1)})
	w.Close()
	raw := buf.Bytes()
	// Not gzip at all.
	if _, err := NewRecordReader(bytes.NewReader([]byte("plain text"))); err == nil {
		t.Fatal("non-gzip accepted")
	}
	_ = raw
}

func TestRecordArchiveTruncated(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewRecordWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := w.Write(packet.Record{Key: key(byte(i)), Packets: 1}); err != nil {
			t.Fatal(err)
		}
	}
	// Close with a LYING trailer by writing it manually: instead,
	// simulate truncation by rebuilding an archive that claims more
	// records than it holds. Easiest: write 10, close, then re-read with
	// a reader over a truncated gzip stream.
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Chop compressed bytes: gzip reader will fail mid-stream.
	cut := buf.Bytes()[:buf.Len()-8]
	r, err := NewRecordReader(bytes.NewReader(cut))
	if err != nil {
		return // acceptable: header unreadable
	}
	for {
		if _, err := r.Next(); err != nil {
			if err == io.EOF {
				t.Fatal("truncated archive read cleanly to EOF")
			}
			return // any decode/integrity error is the expected outcome
		}
	}
}

func TestRecordArchiveCollectorIntegration(t *testing.T) {
	// Archive what a collector receives, reload, and estimate: storage
	// is transparent to the pipeline.
	var buf bytes.Buffer
	w, err := NewRecordWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	recs := []packet.Record{
		{Key: key(1), Packets: 40, Start: 10},
		{Key: key(2), Packets: 60, Start: 20},
	}
	for _, rec := range recs {
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewRecordReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	est, err := NewEstimator(300, []float64{0.01}, func(packet.FiveTuple) (int, bool) { return 0, true })
	if err != nil {
		t.Fatal(err)
	}
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		est.Add(rec)
	}
	bins := est.Estimates()
	if len(bins) != 1 || bins[0].Estimate[0] != 10000 {
		t.Fatalf("estimates = %+v", bins)
	}
}
