package netflow

import (
	"fmt"
	"sort"

	"netsamp/internal/state"
	"netsamp/internal/topology"
)

// This file gives the collector's loss accounting a crash-safe form:
// Snapshot captures the aggregate counters and every exporter's
// flow-sequence tracker (expected next sequence, outstanding holes,
// per-exporter stats), and Restore reinstalls them on a fresh collector
// after a restart — so sequence gaps spanning the outage are detected
// against the pre-crash expected sequence instead of silently resetting.
// The binary codec is versioned and deterministic (exporters sorted by
// ID), built on the state package primitives.

// collectorSnapVersion stamps the CollectorSnapshot binary encoding.
// Version 2 added CollectorStats.DroppedRecords (shutdown-raced batches);
// version-1 snapshots still decode, with zero dropped records.
const collectorSnapVersion = 2

// legacyCollectorSnapVersion is the newest prior snapshot version
// UnmarshalBinary still reads.
const legacyCollectorSnapVersion = 1

// Hole is an outstanding missing record range [Start, Start+Count) in an
// exporter's flow sequence, kept for reorder reconciliation.
type Hole struct {
	Start uint32
	Count uint32
}

// ExporterSnapshot is the restorable per-exporter sequence tracker.
type ExporterSnapshot struct {
	ID    uint32
	Next  uint32 // expected FlowSequence of the next datagram
	Seen  bool
	Holes []Hole
	Stats ExporterStats
}

// CollectorSnapshot is the restorable accounting state of a Collector.
// Exporters is sorted by ID, so marshaling is deterministic.
type CollectorSnapshot struct {
	Stats     CollectorStats
	Exporters []ExporterSnapshot
}

// Snapshot captures the collector's accounting state. It is safe to call
// concurrently with the read loop.
func (c *Collector) Snapshot() CollectorSnapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	snap := CollectorSnapshot{
		Stats:     c.stats,
		Exporters: make([]ExporterSnapshot, 0, len(c.exps)),
	}
	for _, id := range topology.SortedKeys(c.exps) {
		es := c.exps[id]
		holes := make([]Hole, len(es.holes))
		for i, h := range es.holes {
			holes[i] = Hole{Start: h.start, Count: h.count}
		}
		snap.Exporters = append(snap.Exporters, ExporterSnapshot{
			ID: id, Next: es.next, Seen: es.seen, Holes: holes, Stats: es.stats,
		})
	}
	return snap
}

// Restore replaces the collector's accounting state with snap, so a
// restarted collector resumes loss accounting where the checkpoint left
// off. Datagrams decoded between the snapshot and the restore are
// re-observed as duplicates or gaps, never double-counted silently.
func (c *Collector) Restore(snap CollectorSnapshot) error {
	exps := make(map[uint32]*SeqTracker, len(snap.Exporters))
	for _, es := range snap.Exporters {
		if _, dup := exps[es.ID]; dup {
			return fmt.Errorf("netflow: snapshot lists exporter %d twice", es.ID)
		}
		if len(es.Holes) > maxSeqHoles {
			return fmt.Errorf("netflow: snapshot of exporter %d has %d holes, limit %d", es.ID, len(es.Holes), maxSeqHoles)
		}
		st := &SeqTracker{next: es.Next, seen: es.Seen, stats: es.Stats}
		for _, h := range es.Holes {
			st.holes = append(st.holes, seqHole{start: h.Start, count: h.Count})
		}
		exps[es.ID] = st
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats = snap.Stats
	c.exps = exps
	return nil
}

// MarshalBinary encodes the snapshot (versioned, little-endian,
// deterministic: exporters are serialized in ID order).
func (s CollectorSnapshot) MarshalBinary() ([]byte, error) {
	exps := append([]ExporterSnapshot(nil), s.Exporters...)
	sort.Slice(exps, func(i, j int) bool { return exps[i].ID < exps[j].ID })
	var e state.Encoder
	e.U16(collectorSnapVersion)
	e.U64(s.Stats.Datagrams)
	e.U64(s.Stats.Records)
	e.U64(s.Stats.Malformed)
	e.U64(s.Stats.LostRecords)
	e.U64(s.Stats.Duplicates)
	e.U64(s.Stats.DroppedRecords)
	e.U32(uint32(len(exps)))
	for _, es := range exps {
		e.U32(es.ID)
		e.U32(es.Next)
		e.Bool(es.Seen)
		e.U64(es.Stats.Datagrams)
		e.U64(es.Stats.Received)
		e.U64(es.Stats.LostRecords)
		e.U64(es.Stats.Duplicates)
		e.U32(uint32(len(es.Holes)))
		for _, h := range es.Holes {
			e.U32(h.Start)
			e.U32(h.Count)
		}
	}
	return e.Data(), nil
}

// UnmarshalBinary decodes a snapshot produced by MarshalBinary,
// rejecting unknown versions and malformed payloads.
func (s *CollectorSnapshot) UnmarshalBinary(b []byte) error {
	d := state.NewDecoder(b)
	v := d.U16()
	if d.Err() == nil && v != collectorSnapVersion && v != legacyCollectorSnapVersion {
		return fmt.Errorf("netflow: unknown collector snapshot version %d", v)
	}
	s.Stats = CollectorStats{
		Datagrams:   d.U64(),
		Records:     d.U64(),
		Malformed:   d.U64(),
		LostRecords: d.U64(),
		Duplicates:  d.U64(),
	}
	if v >= 2 {
		s.Stats.DroppedRecords = d.U64()
	}
	n := d.Len(13) // 13 bytes is the minimal exporter entry
	s.Exporters = make([]ExporterSnapshot, 0, n)
	for i := 0; i < n; i++ {
		es := ExporterSnapshot{
			ID:   d.U32(),
			Next: d.U32(),
			Seen: d.Bool(),
		}
		es.Stats = ExporterStats{
			Datagrams:   d.U64(),
			Received:    d.U64(),
			LostRecords: d.U64(),
			Duplicates:  d.U64(),
		}
		nh := d.Len(8)
		for j := 0; j < nh; j++ {
			es.Holes = append(es.Holes, Hole{Start: d.U32(), Count: d.U32()})
		}
		s.Exporters = append(s.Exporters, es)
	}
	return d.Finish()
}
