// Package netflow implements the router-embedded monitoring substrate
// the paper configures: a sampled flow table with idle and active
// timeouts (the NetFlow model), a UDP exporter with sequence numbers, a
// collector with loss accounting, and the post-processing step that bins
// records into measurement intervals and renormalizes sampled counts by
// the inverse sampling rate (paper, Section V-A).
//
// Time is simulated trace time in whole seconds (uint32), not wall-clock
// time, so pipelines are deterministic and replayable.
package netflow

import (
	"sort"
	"sync"

	"netsamp/internal/packet"
	"netsamp/internal/rng"
)

// Config parametrizes a monitor's flow table.
type Config struct {
	// SamplingRate is the packet sampling probability p of this monitor.
	// Only sampled packets update the flow table (sampled NetFlow).
	SamplingRate float64
	// IdleTimeout expires a flow that has seen no sampled packet for this
	// many seconds (the paper's GEANT feed uses 30 s).
	IdleTimeout uint32
	// ActiveTimeout force-exports a flow after this many seconds of
	// activity, bounding record latency (0 disables).
	ActiveTimeout uint32
	// MaxEntries bounds the table; when full, observing a new flow
	// evicts and exports the oldest-started entry (0 means unbounded).
	MaxEntries int
	// Coordination optionally enables cSamp-style coordinated sampling:
	// flows of measured OD pairs are hash-filtered to this monitor's
	// assigned ranges before the sampling coin (see CoordConfig). Nil
	// keeps the plain independent-sampling behavior.
	Coordination *CoordConfig
}

// DefaultConfig mirrors the paper's GEANT configuration: 1/1000
// sampling, 30 s idle timeout, 60 s active timeout.
func DefaultConfig() Config {
	return Config{SamplingRate: 0.001, IdleTimeout: 30, ActiveTimeout: 60}
}

// TableStats counts a flow table's activity.
type TableStats struct {
	ObservedPackets uint64 // packets offered to the monitor
	SampledPackets  uint64 // packets that passed sampling
	ActiveFlows     int    // entries currently in the table
	ExpiredFlows    uint64 // records emitted by timeouts or flush
	EvictedFlows    uint64 // records emitted by table pressure
}

// FlowTable is one monitor's sampled flow cache. It is safe for
// concurrent use.
type FlowTable struct {
	monitorID uint16
	cfg       Config

	mu      sync.Mutex
	rng     *rng.Source                        //netsamp:guardedby mu sampling decisions must be serialized for replay determinism
	entries map[packet.FiveTuple]*packet.Record //netsamp:guardedby mu
	stats   TableStats                         //netsamp:guardedby mu
}

// NewFlowTable returns a flow table for the given monitor. src drives
// the sampling decisions; pass a Split of the experiment seed for
// reproducibility.
func NewFlowTable(monitorID uint16, cfg Config, src *rng.Source) *FlowTable {
	return &FlowTable{
		monitorID: monitorID,
		cfg:       cfg,
		rng:       src,
		entries:   make(map[packet.FiveTuple]*packet.Record),
	}
}

// Observe offers one packet to the monitor at trace time now. It applies
// the sampling decision and, if the packet is sampled, updates (or
// creates) the flow entry. It reports whether the packet was sampled.
// Evicted records due to table pressure are returned so the caller can
// export them.
func (ft *FlowTable) Observe(key packet.FiveTuple, bytes uint32, now uint32) (sampled bool, evicted []packet.Record) {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	ft.stats.ObservedPackets++
	rate := ft.cfg.SamplingRate
	if cc := ft.cfg.Coordination; cc != nil {
		// Hash filter first: a measured flow outside this monitor's
		// range belongs to another monitor on the path and must not be
		// double-sampled here.
		r, consider := cc.Decide(key, rate)
		if !consider {
			return false, nil
		}
		rate = r
	}
	if !ft.rng.Bernoulli(rate) {
		return false, nil
	}
	ft.stats.SampledPackets++
	if e, ok := ft.entries[key]; ok {
		e.Packets++
		e.Bytes += uint64(bytes)
		e.End = now
		return true, nil
	}
	if ft.cfg.MaxEntries > 0 && len(ft.entries) >= ft.cfg.MaxEntries {
		evicted = append(evicted, ft.evictOldestLocked())
	}
	ft.entries[key] = &packet.Record{
		Key:       key,
		MonitorID: ft.monitorID,
		Packets:   1,
		Bytes:     uint64(bytes),
		Start:     now,
		End:       now,
	}
	return true, evicted
}

// evictOldestLocked removes and returns the entry with the earliest
// start time, ties broken by the flow-key total order so the victim is
// independent of map iteration order. Caller holds the lock and has
// checked the table is non-empty.
//
//netsamp:holds mu
func (ft *FlowTable) evictOldestLocked() packet.Record {
	var oldestKey packet.FiveTuple
	var oldest *packet.Record
	//netsamp:nondeterministic-ok total-order min selection: (Start, key) is a strict order, so the winner is iteration-order independent
	for k, e := range ft.entries {
		if oldest == nil || e.Start < oldest.Start || (e.Start == oldest.Start && k.Less(oldestKey)) {
			oldestKey, oldest = k, e
		}
	}
	delete(ft.entries, oldestKey)
	ft.stats.EvictedFlows++
	return *oldest
}

// sortRecords orders a sweep's emitted records deterministically: by
// start time, then by the flow-key total order (keys are unique in the
// table, so this is a strict order).
func sortRecords(recs []packet.Record) {
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Start != recs[j].Start {
			return recs[i].Start < recs[j].Start
		}
		return recs[i].Key.Less(recs[j].Key)
	})
}

// Expire emits the records whose idle or active timeout has passed at
// trace time now, removing them from the table, in deterministic
// (start-time, flow-key) order. Call it periodically (routers run this
// once a second).
func (ft *FlowTable) Expire(now uint32) []packet.Record {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	var out []packet.Record
	//netsamp:nondeterministic-ok the emitted set is order-free (membership only); sortRecords below fixes the output order
	for k, e := range ft.entries {
		idle := now >= e.End && now-e.End >= ft.cfg.IdleTimeout
		active := ft.cfg.ActiveTimeout > 0 && now >= e.Start && now-e.Start >= ft.cfg.ActiveTimeout
		if idle || active {
			out = append(out, *e)
			delete(ft.entries, k)
			ft.stats.ExpiredFlows++
		}
	}
	sortRecords(out)
	return out
}

// Flush emits every remaining record (end of trace) in deterministic
// (start-time, flow-key) order and empties the table.
func (ft *FlowTable) Flush() []packet.Record {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	out := make([]packet.Record, 0, len(ft.entries))
	//netsamp:nondeterministic-ok the emitted set is order-free (membership only); sortRecords below fixes the output order
	for k, e := range ft.entries {
		out = append(out, *e)
		delete(ft.entries, k)
		ft.stats.ExpiredFlows++
	}
	sortRecords(out)
	return out
}

// Stats returns a snapshot of the table's counters.
func (ft *FlowTable) Stats() TableStats {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	s := ft.stats
	s.ActiveFlows = len(ft.entries)
	return s
}
