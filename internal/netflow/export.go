package netflow

import (
	"fmt"
	"net"
	"sync"
	"time"

	"netsamp/internal/packet"
	"netsamp/internal/topology"
)

// MaxRecordsPerDatagram keeps an export datagram within a conservative
// 1400-byte MTU budget: 16 + 34*40 = 1376 bytes.
const MaxRecordsPerDatagram = 34

// RetryPolicy bounds the exporter's handling of transient write errors:
// each datagram is attempted up to 1+MaxRetries times, sleeping Backoff,
// 2·Backoff, 4·Backoff … between attempts. The zero value disables
// retries (a failed write drops the datagram immediately).
type RetryPolicy struct {
	// MaxRetries is the number of re-attempts after the first failed
	// write (0 = no retries).
	MaxRetries int
	// Backoff is the sleep before the first retry; it doubles on each
	// subsequent one. Zero means retry immediately.
	Backoff time.Duration
}

// Exporter ships flow records to a collector over UDP, batching records
// into datagrams and stamping each datagram with the NetFlow v5
// FlowSequence convention — the cumulative number of records exported
// before the datagram — so the collector can account for lost *records*,
// not just lost datagrams (see internal/netflow/v5.go). It is safe for
// concurrent use.
//
// Writes that fail are retried per the RetryPolicy; a datagram whose
// retries are exhausted is dropped and counted in Dropped(). The
// sequence still advances past dropped records, so the loss surfaces at
// the collector as an ordinary FlowSequence gap — exporter-side and
// network-side losses are accounted identically downstream.
type Exporter struct {
	exporterID uint32
	retry      RetryPolicy

	mu      sync.Mutex
	conn    net.Conn        //netsamp:guardedby mu
	seq     uint32          //netsamp:guardedby mu records exported before the next datagram
	batch   []packet.Record //netsamp:guardedby mu
	buf     []byte          //netsamp:guardedby mu
	sent    uint64          //netsamp:guardedby mu
	dropped uint64          //netsamp:guardedby mu
	retries uint64          //netsamp:guardedby mu
	closed  bool            //netsamp:guardedby mu
}

// NewExporter dials the collector at addr (e.g. "127.0.0.1:9995") and
// returns an exporter identified by exporterID.
func NewExporter(addr string, exporterID uint32) (*Exporter, error) {
	conn, err := net.Dial("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("netflow: dial collector: %w", err)
	}
	return NewExporterConn(conn, exporterID), nil
}

// NewExporterConn wraps an existing connection (any datagram-oriented
// net.Conn, including fault-injecting wrappers) as an exporter.
func NewExporterConn(conn net.Conn, exporterID uint32) *Exporter {
	return &Exporter{
		exporterID: exporterID,
		conn:       conn,
		buf:        make([]byte, 0, packet.HeaderSize+MaxRecordsPerDatagram*packet.RecordSize),
	}
}

// SetRetry installs the transient-write-error policy. Call before
// exporting; it is not safe to change concurrently with Export.
func (e *Exporter) SetRetry(p RetryPolicy) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.retry = p
}

// Export queues records and sends every full datagram. Call Flush to
// push a final partial datagram.
func (e *Exporter) Export(recs []packet.Record) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return fmt.Errorf("netflow: exporter closed")
	}
	e.batch = append(e.batch, recs...)
	var firstErr error
	for len(e.batch) >= MaxRecordsPerDatagram {
		if err := e.sendLocked(e.batch[:MaxRecordsPerDatagram]); err != nil && firstErr == nil {
			firstErr = err
		}
		e.batch = e.batch[MaxRecordsPerDatagram:]
	}
	return firstErr
}

// Flush sends any buffered partial datagram.
func (e *Exporter) Flush() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return fmt.Errorf("netflow: exporter closed")
	}
	if len(e.batch) == 0 {
		return nil
	}
	err := e.sendLocked(e.batch)
	e.batch = e.batch[:0]
	return err
}

// sendLocked encodes and writes one datagram, retrying transient write
// errors per the policy. Whatever the outcome, the flow sequence
// advances by the record count: a dropped datagram becomes a sequence
// gap the collector will observe and account.
//
//netsamp:holds mu callers flush and Close enter with e.mu held
func (e *Exporter) sendLocked(recs []packet.Record) error {
	h := packet.Header{Count: uint8(len(recs)), Seq: e.seq, Exporter: e.exporterID}
	e.buf = h.AppendTo(e.buf[:0])
	for i := range recs {
		e.buf = recs[i].AppendTo(e.buf)
	}
	var err error
	backoff := e.retry.Backoff
	for attempt := 0; ; attempt++ {
		_, err = e.conn.Write(e.buf)
		if err == nil {
			break
		}
		if attempt >= e.retry.MaxRetries {
			break
		}
		e.retries++
		if backoff > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
	}
	e.seq += uint32(len(recs))
	if err != nil {
		e.dropped += uint64(len(recs))
		return fmt.Errorf("netflow: export datagram: %w", err)
	}
	e.sent += uint64(len(recs))
	return nil
}

// Sent returns the number of records successfully written so far.
func (e *Exporter) Sent() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.sent
}

// Dropped returns the number of records abandoned after exhausting the
// retry policy. Dropped records surface at the collector as
// FlowSequence gaps.
func (e *Exporter) Dropped() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.dropped
}

// Retries returns how many re-attempts the retry policy has performed.
func (e *Exporter) Retries() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.retries
}

// Close flushes buffered records and releases the socket.
func (e *Exporter) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil
	}
	var err error
	if len(e.batch) > 0 {
		err = e.sendLocked(e.batch)
		e.batch = nil
	}
	e.closed = true
	if cerr := e.conn.Close(); err == nil {
		err = cerr
	}
	return err
}

// Batch is one decoded export datagram.
type Batch struct {
	Exporter uint32
	Seq      uint32
	Records  []packet.Record
}

// CollectorStats accounts the collector's aggregate intake.
type CollectorStats struct {
	Datagrams   uint64
	Records     uint64
	Malformed   uint64
	LostRecords uint64 // flow-sequence gaps summed over exporters
	Duplicates  uint64 // duplicate/reordered datagrams summed over exporters
	// DroppedRecords counts records that were decoded but never delivered
	// on the batch channel because Close raced the hand-off: the shutdown
	// path drops them and accounts them here instead of blocking forever
	// on a consumer that already went away.
	DroppedRecords uint64
}

// ExporterStats accounts one exporter's stream as seen by the
// collector.
type ExporterStats struct {
	// Datagrams and Received count accepted datagrams and the flow
	// records they carried.
	Datagrams uint64
	Received  uint64
	// LostRecords counts records missing per the FlowSequence
	// convention: each datagram carries the cumulative record count
	// exported before it, so a jump past the expected next sequence is
	// a loss of exactly that many records. A late (reordered) datagram
	// that fills a previously observed gap is credited back.
	LostRecords uint64
	// Duplicates counts datagrams whose sequence range was already
	// delivered (duplicated in flight, or retransmitted).
	Duplicates uint64
}

// LossFraction returns LostRecords / (Received + LostRecords), the
// record-loss estimate an estimator should inflate its variance with.
func (s ExporterStats) LossFraction() float64 {
	total := s.Received + s.LostRecords
	if total == 0 {
		return 0
	}
	return float64(s.LostRecords) / float64(total)
}

// maxSeqHoles bounds the per-exporter memory of outstanding sequence
// gaps kept for reorder reconciliation; older holes are forgotten (and
// stay counted as lost).
const maxSeqHoles = 64

// seqHole is a missing [start, start+count) record range.
type seqHole struct {
	start uint32
	count uint32
}

// SeqTracker is a per-exporter flow-sequence tracker: it turns the
// NetFlow v5 FlowSequence convention into record-level loss accounting,
// detecting gaps (lost records), reordered datagrams that refill a known
// gap (loss credited back) and duplicates. Both the single-socket
// Collector and the sharded ingest tier (internal/ingest) run one per
// exporter; it is not synchronized — the owner serializes access.
type SeqTracker struct {
	next  uint32 // expected FlowSequence of the next datagram
	seen  bool
	holes []seqHole
	stats ExporterStats
}

// Stats returns the tracker's accounting so far.
func (t *SeqTracker) Stats() ExporterStats { return t.stats }

// Account updates the tracker with one accepted datagram carrying count
// records starting at flow sequence seq, and returns how the aggregate
// loss accounting moved: lostDelta is the (possibly negative, when a
// reordered datagram refills a gap) change in lost records, dup reports
// a duplicate datagram. All arithmetic is uint32, so sequence wraparound
// is handled naturally: a difference below 2^31 is a forward jump (a
// gap), at or above it a step backwards (a reordered or duplicated
// datagram).
func (t *SeqTracker) Account(seq uint32, count uint32) (lostDelta int64, dup bool) {
	if !t.seen {
		t.seen = true
		t.next = seq + count
	} else {
		switch diff := seq - t.next; {
		case diff == 0: // in order
			t.next = seq + count
		case diff < 1<<31: // forward jump: diff records missing
			t.stats.LostRecords += uint64(diff)
			lostDelta = int64(diff)
			if len(t.holes) == maxSeqHoles {
				t.holes = t.holes[1:]
			}
			t.holes = append(t.holes, seqHole{start: t.next, count: diff})
			t.next = seq + count
		default: // behind: late arrival or duplicate
			if i := t.findHole(seq, count); i >= 0 {
				// A reordered datagram filled a known gap: credit the
				// loss back.
				t.stats.LostRecords -= uint64(count)
				lostDelta = -int64(count)
				t.shrinkHole(i, seq, count)
			} else {
				t.stats.Duplicates++
				dup = true
			}
		}
	}
	t.stats.Datagrams++
	t.stats.Received += uint64(count)
	return lostDelta, dup
}

// Collector listens for export datagrams on UDP, decodes them and
// delivers batches on a channel. Flow-sequence gaps are accounted per
// exporter as lost records; duplicated and reordered datagrams are
// detected and counted. Close stops the read loop and closes the
// channel.
type Collector struct {
	conn *net.UDPConn
	ch   chan Batch
	// done is closed by Close before the socket: the read loop's channel
	// hand-off selects on it, so a decoded batch nobody will consume is
	// dropped (and accounted) instead of wedging the loop — and no send
	// can race the shutdown.
	done      chan struct{}
	closeOnce sync.Once

	mu    sync.Mutex
	stats CollectorStats         //netsamp:guardedby mu
	exps  map[uint32]*SeqTracker //netsamp:guardedby mu
	wg    sync.WaitGroup
}

// NewCollector binds a UDP listener on addr ("127.0.0.1:0" picks an
// ephemeral port) and starts the read loop.
func NewCollector(addr string) (*Collector, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("netflow: resolve %q: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, fmt.Errorf("netflow: listen: %w", err)
	}
	// Routers export in bursts (timeout sweeps flush many flows at
	// once); a generous socket buffer absorbs them. Best-effort: the
	// kernel may clamp it, and sequence gaps surface any residual loss.
	_ = conn.SetReadBuffer(8 << 20)
	c := &Collector{
		conn: conn,
		ch:   make(chan Batch, 256),
		done: make(chan struct{}),
		exps: make(map[uint32]*SeqTracker),
	}
	c.wg.Add(1)
	//netsamp:nondeterministic-ok live socket intake is outside replay; all downstream views (Exporters, Snapshot, Estimates) are sorted, and the batch channel + wg synchronize the loop
	go c.readLoop()
	return c, nil
}

// Addr returns the listener's address, for exporters to dial.
func (c *Collector) Addr() string { return c.conn.LocalAddr().String() }

// Batches returns the channel of decoded batches. It is closed by Close.
func (c *Collector) Batches() <-chan Batch { return c.ch }

// Stats returns a snapshot of the collector's aggregate counters.
func (c *Collector) Stats() CollectorStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// ExporterStats returns the per-exporter accounting of one exporter ID
// (ok = false if the collector has never heard from it).
func (c *Collector) ExporterStats(id uint32) (ExporterStats, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	es, ok := c.exps[id]
	if !ok {
		return ExporterStats{}, false
	}
	return es.stats, true
}

// ExporterAccount pairs an exporter ID with its accounting, for the
// deterministic (sorted) Exporters listing.
type ExporterAccount struct {
	ID    uint32
	Stats ExporterStats
}

// Exporters returns a snapshot of every known exporter's accounting in
// ascending ID order — a deterministic listing consumers can range over
// without inheriting map iteration order.
func (c *Collector) Exporters() []ExporterAccount {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]ExporterAccount, 0, len(c.exps))
	for _, id := range topology.SortedKeys(c.exps) {
		out = append(out, ExporterAccount{ID: id, Stats: c.exps[id].stats})
	}
	return out
}

// LossFraction returns the record-loss fraction aggregated over all
// exporters: Σ lost / Σ (received + lost).
func (c *Collector) LossFraction() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := c.stats.Records + c.stats.LostRecords
	if total == 0 {
		return 0
	}
	return float64(c.stats.LostRecords) / float64(total)
}

// Close shuts the listener down and waits for the read loop to drain.
// A decoded batch the read loop is still holding when Close arrives is
// counted in CollectorStats.DroppedRecords rather than sent: after Close
// returns, no send on the batch channel can happen, even when the
// consumer stopped reading first.
func (c *Collector) Close() error {
	var err error
	c.closeOnce.Do(func() {
		close(c.done)
		err = c.conn.Close()
	})
	c.wg.Wait()
	return err
}

func (c *Collector) readLoop() {
	defer c.wg.Done()
	defer close(c.ch)
	buf := make([]byte, 65536)
	for {
		n, _, err := c.conn.ReadFromUDP(buf)
		if err != nil {
			return // closed
		}
		batch, ok := c.decode(buf[:n])
		if !ok {
			continue
		}
		select {
		case c.ch <- batch:
		case <-c.done:
			// Shutdown raced the hand-off: nobody is draining the
			// channel anymore, so deliverability is gone. Account the
			// batch as dropped — received == delivered + dropped stays
			// exact — and exit without ever sending after Close.
			c.mu.Lock()
			c.stats.DroppedRecords += uint64(len(batch.Records))
			c.mu.Unlock()
			return
		}
	}
}

func (c *Collector) decode(b []byte) (Batch, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var h packet.Header
	if err := h.DecodeFromBytes(b); err != nil {
		// Truncated, foreign or version-skewed header.
		c.stats.Malformed++
		return Batch{}, false
	}
	if h.Count == 0 {
		// An export datagram always carries records; the exporter never
		// sends empty ones, so this is noise or a forged header.
		c.stats.Malformed++
		return Batch{}, false
	}
	want := packet.HeaderSize + int(h.Count)*packet.RecordSize
	if len(b) < want {
		// The declared record count exceeds the buffer: a mid-record cut
		// or a forged count. Reject before the record loop so it can
		// never over-read, and never let a truncated datagram advance the
		// sequence accounting.
		c.stats.Malformed++
		return Batch{}, false
	}
	if len(b) > want {
		// Trailing bytes after the declared records: not ours.
		c.stats.Malformed++
		return Batch{}, false
	}
	recs := make([]packet.Record, h.Count)
	off := packet.HeaderSize
	for i := range recs {
		if err := recs[i].DecodeFromBytes(b[off:]); err != nil {
			c.stats.Malformed++
			return Batch{}, false
		}
		off += packet.RecordSize
	}
	c.account(h)
	return Batch{Exporter: h.Exporter, Seq: h.Seq, Records: recs}, true
}

// account updates the per-exporter flow-sequence bookkeeping for one
// accepted datagram and folds the movement into the aggregate counters.
//
//netsamp:holds mu called from the decode path, which locks around the whole datagram
func (c *Collector) account(h packet.Header) {
	es := c.exps[h.Exporter]
	if es == nil {
		es = &SeqTracker{}
		c.exps[h.Exporter] = es
	}
	count := uint32(h.Count)
	lostDelta, dup := es.Account(h.Seq, count)
	c.stats.LostRecords = uint64(int64(c.stats.LostRecords) + lostDelta)
	if dup {
		c.stats.Duplicates++
	}
	c.stats.Datagrams++
	c.stats.Records += uint64(count)
}

// findHole returns the index of the hole containing [seq, seq+count),
// or -1.
func (t *SeqTracker) findHole(seq, count uint32) int {
	for i, hole := range t.holes {
		off := seq - hole.start // uint32 wraparound-safe offset
		if off < hole.count && off+count <= hole.count {
			return i
		}
	}
	return -1
}

// shrinkHole removes [seq, seq+count) from hole i, splitting it if the
// filled range is interior.
func (t *SeqTracker) shrinkHole(i int, seq, count uint32) {
	hole := t.holes[i]
	off := seq - hole.start
	var repl []seqHole
	if off > 0 {
		repl = append(repl, seqHole{start: hole.start, count: off})
	}
	if rest := hole.count - off - count; rest > 0 {
		repl = append(repl, seqHole{start: seq + count, count: rest})
	}
	t.holes = append(t.holes[:i], append(repl, t.holes[i+1:]...)...)
}
