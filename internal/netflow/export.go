package netflow

import (
	"fmt"
	"net"
	"sync"

	"netsamp/internal/packet"
)

// MaxRecordsPerDatagram keeps an export datagram within a conservative
// 1400-byte MTU budget: 16 + 34*40 = 1376 bytes.
const MaxRecordsPerDatagram = 34

// Exporter ships flow records to a collector over UDP, batching records
// into datagrams and stamping each datagram with a sequence number so
// the collector can account for loss (the NetFlow v5 idiom). It is safe
// for concurrent use.
type Exporter struct {
	exporterID uint32

	mu     sync.Mutex
	conn   net.Conn
	seq    uint32
	batch  []packet.Record
	buf    []byte
	sent   uint64
	closed bool
}

// NewExporter dials the collector at addr (e.g. "127.0.0.1:9995") and
// returns an exporter identified by exporterID.
func NewExporter(addr string, exporterID uint32) (*Exporter, error) {
	conn, err := net.Dial("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("netflow: dial collector: %w", err)
	}
	return &Exporter{
		exporterID: exporterID,
		conn:       conn,
		buf:        make([]byte, 0, packet.HeaderSize+MaxRecordsPerDatagram*packet.RecordSize),
	}, nil
}

// Export queues records and sends every full datagram. Call Flush to
// push a final partial datagram.
func (e *Exporter) Export(recs []packet.Record) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return fmt.Errorf("netflow: exporter closed")
	}
	e.batch = append(e.batch, recs...)
	for len(e.batch) >= MaxRecordsPerDatagram {
		if err := e.sendLocked(e.batch[:MaxRecordsPerDatagram]); err != nil {
			return err
		}
		e.batch = e.batch[MaxRecordsPerDatagram:]
	}
	return nil
}

// Flush sends any buffered partial datagram.
func (e *Exporter) Flush() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return fmt.Errorf("netflow: exporter closed")
	}
	if len(e.batch) == 0 {
		return nil
	}
	err := e.sendLocked(e.batch)
	e.batch = e.batch[:0]
	return err
}

func (e *Exporter) sendLocked(recs []packet.Record) error {
	h := packet.Header{Count: uint8(len(recs)), Seq: e.seq, Exporter: e.exporterID}
	e.buf = h.AppendTo(e.buf[:0])
	for i := range recs {
		e.buf = recs[i].AppendTo(e.buf)
	}
	if _, err := e.conn.Write(e.buf); err != nil {
		return fmt.Errorf("netflow: export datagram: %w", err)
	}
	e.seq++
	e.sent += uint64(len(recs))
	return nil
}

// Sent returns the number of records successfully written so far.
func (e *Exporter) Sent() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.sent
}

// Close flushes buffered records and releases the socket.
func (e *Exporter) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil
	}
	var err error
	if len(e.batch) > 0 {
		err = e.sendLocked(e.batch)
		e.batch = nil
	}
	e.closed = true
	if cerr := e.conn.Close(); err == nil {
		err = cerr
	}
	return err
}

// Batch is one decoded export datagram.
type Batch struct {
	Exporter uint32
	Seq      uint32
	Records  []packet.Record
}

// CollectorStats accounts the collector's intake.
type CollectorStats struct {
	Datagrams     uint64
	Records       uint64
	Malformed     uint64
	LostDatagrams uint64 // sequence gaps summed over exporters
}

// Collector listens for export datagrams on UDP, decodes them and
// delivers batches on a channel. Sequence gaps per exporter are counted
// as lost datagrams. Close stops the read loop and closes the channel.
type Collector struct {
	conn *net.UDPConn
	ch   chan Batch

	mu      sync.Mutex
	stats   CollectorStats
	lastSeq map[uint32]uint32
	wg      sync.WaitGroup
}

// NewCollector binds a UDP listener on addr ("127.0.0.1:0" picks an
// ephemeral port) and starts the read loop.
func NewCollector(addr string) (*Collector, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("netflow: resolve %q: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, fmt.Errorf("netflow: listen: %w", err)
	}
	// Routers export in bursts (timeout sweeps flush many flows at
	// once); a generous socket buffer absorbs them. Best-effort: the
	// kernel may clamp it, and sequence gaps surface any residual loss.
	_ = conn.SetReadBuffer(8 << 20)
	c := &Collector{
		conn:    conn,
		ch:      make(chan Batch, 256),
		lastSeq: make(map[uint32]uint32),
	}
	c.wg.Add(1)
	go c.readLoop()
	return c, nil
}

// Addr returns the listener's address, for exporters to dial.
func (c *Collector) Addr() string { return c.conn.LocalAddr().String() }

// Batches returns the channel of decoded batches. It is closed by Close.
func (c *Collector) Batches() <-chan Batch { return c.ch }

// Stats returns a snapshot of the collector's counters.
func (c *Collector) Stats() CollectorStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Close shuts the listener down and waits for the read loop to drain.
func (c *Collector) Close() error {
	err := c.conn.Close()
	c.wg.Wait()
	return err
}

func (c *Collector) readLoop() {
	defer c.wg.Done()
	defer close(c.ch)
	buf := make([]byte, 65536)
	for {
		n, _, err := c.conn.ReadFromUDP(buf)
		if err != nil {
			return // closed
		}
		batch, ok := c.decode(buf[:n])
		if !ok {
			continue
		}
		c.ch <- batch
	}
}

func (c *Collector) decode(b []byte) (Batch, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var h packet.Header
	if err := h.DecodeFromBytes(b); err != nil {
		c.stats.Malformed++
		return Batch{}, false
	}
	want := packet.HeaderSize + int(h.Count)*packet.RecordSize
	if len(b) != want {
		c.stats.Malformed++
		return Batch{}, false
	}
	recs := make([]packet.Record, h.Count)
	off := packet.HeaderSize
	for i := range recs {
		if err := recs[i].DecodeFromBytes(b[off:]); err != nil {
			c.stats.Malformed++
			return Batch{}, false
		}
		off += packet.RecordSize
	}
	if last, seen := c.lastSeq[h.Exporter]; seen && h.Seq > last+1 {
		c.stats.LostDatagrams += uint64(h.Seq - last - 1)
	}
	c.lastSeq[h.Exporter] = h.Seq
	c.stats.Datagrams++
	c.stats.Records += uint64(h.Count)
	return Batch{Exporter: h.Exporter, Seq: h.Seq, Records: recs}, true
}
