package netflow

import "testing"

// FuzzDecodeV5: arbitrary datagrams must never panic the v5 decoder,
// and anything that decodes must re-encode to an equal-length datagram.
func FuzzDecodeV5(f *testing.F) {
	good, _ := EncodeV5(V5Header{SamplingMode: 1, SamplingInterval: 100}, []V5Record{sampleV5Record()})
	f.Add(good)
	f.Add(make([]byte, V5HeaderSize))
	f.Add([]byte{0, 5})
	f.Fuzz(func(t *testing.T, data []byte) {
		h, recs, err := DecodeV5(data)
		if err != nil {
			return
		}
		out, err := EncodeV5(h, recs)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if len(out) != V5HeaderSize+int(h.Count)*V5RecordSize {
			t.Fatalf("bad re-encoded size %d", len(out))
		}
	})
}

// FuzzCollectorDecode: the collector's datagram decoder must be total.
func FuzzCollectorDecode(f *testing.F) {
	c := &Collector{exps: map[uint32]*exporterState{}}
	f.Add([]byte{})
	f.Add(make([]byte, 16))
	f.Fuzz(func(t *testing.T, data []byte) {
		c.decode(data) // must not panic
	})
}
