package netflow

import (
	"testing"

	"netsamp/internal/packet"
)

// FuzzDecodeV5: arbitrary datagrams must never panic the v5 decoder,
// and anything that decodes must re-encode to an equal-length datagram.
func FuzzDecodeV5(f *testing.F) {
	good, _ := EncodeV5(V5Header{SamplingMode: 1, SamplingInterval: 100}, []V5Record{sampleV5Record()})
	f.Add(good)
	f.Add(make([]byte, V5HeaderSize))
	f.Add([]byte{0, 5})
	f.Fuzz(func(t *testing.T, data []byte) {
		h, recs, err := DecodeV5(data)
		if err != nil {
			return
		}
		out, err := EncodeV5(h, recs)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if len(out) != V5HeaderSize+int(h.Count)*V5RecordSize {
			t.Fatalf("bad re-encoded size %d", len(out))
		}
	})
}

// FuzzCollectorDecode: the collector's datagram decoder must be total.
// The corpus seeds the hardened paths explicitly: truncated headers,
// mid-record cuts, counts exceeding the buffer, and trailing garbage.
func FuzzCollectorDecode(f *testing.F) {
	c := &Collector{exps: map[uint32]*SeqTracker{}}
	f.Add([]byte{})
	f.Add(make([]byte, 16))
	whole := dgram(1, 0, 3)
	f.Add(whole)
	f.Add(whole[:packet.HeaderSize-3])                      // truncated header
	f.Add(whole[:packet.HeaderSize])                        // count declared, no records
	f.Add(whole[:packet.HeaderSize+packet.RecordSize+7])    // cut mid-record
	f.Add(whole[:len(whole)-1])                             // last record short one byte
	f.Add(append(append([]byte{}, whole...), 0xca, 0xfe))   // trailing garbage
	f.Fuzz(func(t *testing.T, data []byte) {
		c.decode(data) // must not panic
	})
}

// TestDecodeTruncated: datagrams whose declared record count exceeds the
// buffer — truncated headers, mid-record cuts, a whole missing tail —
// are counted Malformed and never advance the sequence accounting.
func TestDecodeTruncated(t *testing.T) {
	whole := dgram(9, 0, 4)
	cuts := [][]byte{
		{},
		whole[:1],
		whole[:packet.HeaderSize-1],                     // header cut short
		whole[:packet.HeaderSize],                       // count=4, zero record bytes
		whole[:packet.HeaderSize+packet.RecordSize/2],   // cut inside record 0
		whole[:packet.HeaderSize+packet.RecordSize+1],   // cut just after record 1 starts
		whole[:len(whole)-1],                            // one byte shy of complete
		append(append([]byte{}, whole...), 0x00),        // one byte of trailing garbage
		dgram(9, 0, 0),                                  // empty datagram: forged count
	}
	c := offlineCollector()
	for i, cut := range cuts {
		if _, ok := c.decode(cut); ok {
			t.Fatalf("cut %d accepted (%d bytes)", i, len(cut))
		}
	}
	st := c.Stats()
	if st.Malformed != uint64(len(cuts)) {
		t.Fatalf("Malformed = %d, want %d", st.Malformed, len(cuts))
	}
	if st.Datagrams != 0 || st.Records != 0 || st.LostRecords != 0 {
		t.Fatalf("truncated datagrams advanced accounting: %+v", st)
	}
	if _, known := c.ExporterStats(9); known {
		t.Fatal("truncated datagram created exporter state")
	}
	// The intact datagram still decodes after all that abuse.
	if _, ok := c.decode(whole); !ok {
		t.Fatal("intact datagram rejected")
	}
}
