package netflow

import (
	"fmt"

	"netsamp/internal/packet"
)

// CoordConfig configures a monitor for coordinated (cSamp-style) flow
// sampling: flows of a measured OD pair are considered only when their
// 64-bit flow-key hash falls inside this monitor's assigned range, and
// are then sampled with the pair's coin probability. The ranges of the
// monitors on a pair's path partition the hash space exactly (see
// plan.Coordinate), so every flow has exactly one owner — coordination
// eliminates duplicate sampling instead of renormalizing it away.
//
// Ranges and Coins are indexed by the OD pair index the classifier
// returns (plan.Coordination.MonitorConfig emits both). Flows that do
// not classify to a measured pair fall back to the monitor's plain
// Config.SamplingRate coin: background traffic keeps behaving exactly
// as in the uncoordinated pipeline.
type CoordConfig struct {
	// Classify resolves a flow key to its OD pair index.
	Classify ODClassifier
	// Ranges[od] is this monitor's hash range for pair od — the
	// canonical empty range when the monitor owns none of the pair's
	// flow space.
	Ranges []packet.HashRange
	// Coins[od] is the sampling probability applied to flows this
	// monitor owns for pair od: min(1, Σ f·p) over the pair's path.
	Coins []float64
}

// NewCoordConfig validates and assembles a coordination filter.
func NewCoordConfig(classify ODClassifier, ranges []packet.HashRange, coins []float64) (*CoordConfig, error) {
	if classify == nil {
		return nil, fmt.Errorf("netflow: nil classifier")
	}
	if len(ranges) == 0 || len(ranges) != len(coins) {
		return nil, fmt.Errorf("netflow: %d ranges for %d coins, want equal and > 0", len(ranges), len(coins))
	}
	for od, c := range coins {
		if !(c >= 0 && c <= 1) {
			return nil, fmt.Errorf("netflow: pair %d coin %v out of [0, 1]", od, c)
		}
		if c > 0 && ranges[od].Empty() {
			return nil, fmt.Errorf("netflow: pair %d has coin %v but an empty range", od, c)
		}
	}
	return &CoordConfig{Classify: classify, Ranges: ranges, Coins: coins}, nil
}

// Decide is the exporter-side hash filter, run on every observed packet
// before the sampling coin: it returns the coin probability to apply
// and whether this monitor may consider the flow at all. A flow of a
// measured pair outside the monitor's range is someone else's to sample
// (consider = false); an unclassified flow falls back to the plain base
// rate. It allocates nothing — FastHash and Contains are pure integer
// arithmetic on the decode path.
//netsamp:noalloc
func (c *CoordConfig) Decide(key packet.FiveTuple, base float64) (rate float64, consider bool) {
	od, ok := c.Classify(key) //netsamp:allocflow-ok classifier installed at config time is a pure index lookup
	if !ok || od < 0 || od >= len(c.Ranges) {
		return base, true
	}
	if !c.Ranges[od].Contains(key.FastHash()) {
		return 0, false
	}
	return c.Coins[od], true
}

// NewCoordinatedEstimator builds the estimator for a coordinated
// deployment: rho[k] is pair k's deployed inclusion probability
// min(1, Σ f_ki·p_i). Values above 1 (a caller passing the solver's
// unclamped additive surrogate) are clamped to 1, matching what the
// exporters actually apply.
//
// Renormalization is the same X/ρ as the independent pipeline, but the
// variance model behind BinEstimate.RelStdErr — binomial thinning, so
// relative standard error sqrt((1−ρ_eff)/X) — is exact here rather
// than approximate: disjoint ranges make "packet sampled somewhere" a
// single Bernoulli(ρ) event per packet, whereas independent monitors
// overlap and the thinning model only approximates the duplicate-
// counting process.
func NewCoordinatedEstimator(intervalSeconds uint32, rho []float64, classify ODClassifier) (*Estimator, error) {
	clamped := make([]float64, len(rho))
	for k, r := range rho {
		if r > 1 {
			r = 1
		}
		clamped[k] = r
	}
	return NewEstimator(intervalSeconds, clamped, classify)
}
