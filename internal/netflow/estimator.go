package netflow

import (
	"fmt"
	"math"
	"sync"

	"netsamp/internal/packet"
	"netsamp/internal/prefix"
	"netsamp/internal/topology"
)

// ODClassifier maps a flow key to the index of the OD pair it belongs
// to. It returns ok = false for background traffic outside the
// measurement task (the paper resolves the egress PoP from the
// destination address; here the classifier encapsulates that step).
type ODClassifier func(key packet.FiveTuple) (od int, ok bool)

// Estimator is the post-processing stage of the paper's pipeline: it
// bins collected flow records into measurement intervals by their start
// time (Section V-A), accumulates per-OD sampled packet counts, and
// renormalizes by the effective sampling rate ρ of each OD pair to
// produce size estimates X/ρ. It is safe for concurrent use.
type Estimator struct {
	interval uint32
	rho      []float64
	classify ODClassifier

	mu   sync.Mutex
	bins map[uint32][]uint64 // bin start → per-OD sampled packets
	loss float64             // transport record-loss fraction in [0, 1)
}

// NewEstimator builds an estimator for len(rho) OD pairs over
// measurement intervals of the given length in seconds.
func NewEstimator(intervalSeconds uint32, rho []float64, classify ODClassifier) (*Estimator, error) {
	if intervalSeconds == 0 {
		return nil, fmt.Errorf("netflow: zero interval")
	}
	if len(rho) == 0 {
		return nil, fmt.Errorf("netflow: no OD pairs")
	}
	if classify == nil {
		return nil, fmt.Errorf("netflow: nil classifier")
	}
	return &Estimator{
		interval: intervalSeconds,
		rho:      append([]float64(nil), rho...),
		classify: classify,
		bins:     make(map[uint32][]uint64),
	}, nil
}

// Add accumulates one flow record. Records that do not classify to an OD
// pair of interest are ignored.
func (e *Estimator) Add(rec packet.Record) {
	od, ok := e.classify(rec.Key)
	if !ok || od < 0 || od >= len(e.rho) {
		return
	}
	bin := rec.Start - rec.Start%e.interval
	e.mu.Lock()
	defer e.mu.Unlock()
	counts, ok := e.bins[bin]
	if !ok {
		counts = make([]uint64, len(e.rho))
		e.bins[bin] = counts
	}
	counts[od] += rec.Packets
}

// AddBatch accumulates every record of a collected batch.
func (e *Estimator) AddBatch(b Batch) {
	for _, rec := range b.Records {
		e.Add(rec)
	}
}

// AddCounts folds pre-classified per-OD sampled packet counts into the
// interval containing binStart — the sharded ingest tier's merge entry
// point: shards accumulate locally without touching the estimator's
// lock per record, then flush their deltas here at merge cadence.
// Integer addition is exact and commutative, so the merged totals are
// independent of shard count and merge order.
func (e *Estimator) AddCounts(binStart uint32, counts []uint64) error {
	if len(counts) != len(e.rho) {
		return fmt.Errorf("netflow: %d counts for %d OD pairs", len(counts), len(e.rho))
	}
	bin := binStart - binStart%e.interval
	e.mu.Lock()
	defer e.mu.Unlock()
	acc, ok := e.bins[bin]
	if !ok {
		acc = make([]uint64, len(e.rho))
		e.bins[bin] = acc
	}
	for k, c := range counts {
		acc[k] += c
	}
	return nil
}

// SetTransportLoss informs the estimator of the transport-level record
// loss fraction ℓ the collector observed via FlowSequence gaps (see
// Collector.LossFraction). Estimates are renormalized by ρ·(1−ℓ) — the
// true inclusion probability of a packet that must be sampled AND its
// record delivered — and the per-estimate relative standard error is
// inflated accordingly. Fractions outside [0, 1) are rejected.
func (e *Estimator) SetTransportLoss(frac float64) error {
	if !(frac >= 0 && frac < 1) {
		return fmt.Errorf("netflow: transport loss fraction %v out of [0, 1)", frac)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.loss = frac
	return nil
}

// LowConfidenceRelErr is the relative-standard-error threshold above
// which an estimate is flagged low-confidence.
const LowConfidenceRelErr = 0.5

// BinEstimate holds the per-OD estimates of one measurement interval.
type BinEstimate struct {
	Start uint32
	// Sampled[k] is the raw sampled packet count of OD pair k that
	// reached the collector.
	Sampled []uint64
	// Estimate[k] is Sampled[k]/(ρ_k·(1−ℓ)) for transport loss ℓ, or 0
	// when ρ_k = 0 (unmonitored).
	Estimate []float64
	// RelStdErr[k] is the delta-method relative standard error of
	// Estimate[k] under binomial thinning at rate ρ_k·(1−ℓ):
	// sqrt((1−ρ_eff)/X). Transport loss shrinks ρ_eff and so inflates
	// the reported uncertainty. It is +Inf when nothing was sampled.
	RelStdErr []float64
	// LowConfidence[k] flags estimates whose RelStdErr exceeds
	// LowConfidenceRelErr — the consumer should not trust them without
	// widening its own error bars.
	LowConfidence []bool
}

// Estimates returns one BinEstimate per interval, ordered by start time.
func (e *Estimator) Estimates() []BinEstimate {
	e.mu.Lock()
	defer e.mu.Unlock()
	starts := topology.SortedKeys(e.bins)
	out := make([]BinEstimate, 0, len(starts))
	for _, s := range starts {
		counts := e.bins[s]
		be := BinEstimate{
			Start:         s,
			Sampled:       append([]uint64(nil), counts...),
			Estimate:      make([]float64, len(counts)),
			RelStdErr:     make([]float64, len(counts)),
			LowConfidence: make([]bool, len(counts)),
		}
		for k, c := range counts {
			effRho := e.rho[k] * (1 - e.loss)
			if effRho <= 0 {
				be.RelStdErr[k] = math.Inf(1)
				be.LowConfidence[k] = true
				continue
			}
			be.Estimate[k] = float64(c) / effRho
			if c == 0 {
				be.RelStdErr[k] = math.Inf(1)
			} else {
				be.RelStdErr[k] = math.Sqrt((1 - effRho) / float64(c))
			}
			be.LowConfidence[k] = be.RelStdErr[k] > LowConfidenceRelErr
		}
		out = append(out, be)
	}
	return out
}

// PrefixClassifier builds an ODClassifier that resolves the OD pair of
// a flow by longest-prefix match on the destination address — the
// paper's egress-PoP resolution step ("we associate to each flow record
// the egress PoP, computed from the destination IP address").
func PrefixClassifier(t *prefix.Table) ODClassifier {
	return func(key packet.FiveTuple) (int, bool) {
		v, ok := t.Lookup(key.Dst)
		if !ok || v < 0 {
			return 0, false
		}
		return int(v), true
	}
}

// LinkLoadObservation converts one monitor's interval sample into a
// link-load observation for the controller's confidence tracker
// (control.StepInput.Loads/LoadRelErr): the transport-loss-renormalized
// point estimate X/(p·(1−ℓ)·T) in packets per second and its
// delta-method relative standard error sqrt((1−p_eff)/X) — exactly the
// inflation SetTransportLoss applies to per-OD estimates, carried
// through to the load tracker instead of stopping at the estimate.
// lowConfidence mirrors BinEstimate.LowConfidence: the error crossed
// LowConfidenceRelErr and the tracker should widen rather than trust
// (a +Inf relErr makes loadtrack treat the interval as unobserved).
func LinkLoadObservation(sampled uint64, rate, loss, intervalSec float64) (estimate, relErr float64, lowConfidence bool) {
	eff := rate * (1 - loss)
	if !(eff > 0) || eff > 1 || !(intervalSec > 0) {
		return 0, math.Inf(1), true
	}
	estimate = float64(sampled) / (eff * intervalSec)
	if sampled == 0 {
		return 0, math.Inf(1), true
	}
	relErr = math.Sqrt((1 - eff) / float64(sampled))
	return estimate, relErr, relErr > LowConfidenceRelErr
}
