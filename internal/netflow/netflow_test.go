package netflow

import (
	"math"
	"testing"

	"netsamp/internal/packet"
	"netsamp/internal/prefix"
	"netsamp/internal/rng"
)

func key(n byte) packet.FiveTuple {
	return packet.FiveTuple{
		Src:     packet.AddrFrom4(10, 0, 0, n),
		Dst:     packet.AddrFrom4(192, 168, 0, 1),
		SrcPort: 1000 + uint16(n),
		DstPort: 80,
		Proto:   packet.ProtoTCP,
	}
}

func TestFlowTableSamplesAllAtRateOne(t *testing.T) {
	ft := NewFlowTable(1, Config{SamplingRate: 1, IdleTimeout: 30}, rng.New(1))
	for i := 0; i < 10; i++ {
		sampled, evicted := ft.Observe(key(1), 100, uint32(i))
		if !sampled {
			t.Fatal("rate-1 sampler dropped a packet")
		}
		if evicted != nil {
			t.Fatal("unexpected eviction")
		}
	}
	s := ft.Stats()
	if s.ObservedPackets != 10 || s.SampledPackets != 10 || s.ActiveFlows != 1 {
		t.Fatalf("stats = %+v", s)
	}
	recs := ft.Flush()
	if len(recs) != 1 {
		t.Fatalf("flush = %d records", len(recs))
	}
	r := recs[0]
	if r.Packets != 10 || r.Bytes != 1000 || r.Start != 0 || r.End != 9 || r.MonitorID != 1 {
		t.Fatalf("record = %+v", r)
	}
}

func TestFlowTableSamplingRate(t *testing.T) {
	ft := NewFlowTable(1, Config{SamplingRate: 0.1, IdleTimeout: 30}, rng.New(2))
	const n = 100000
	for i := 0; i < n; i++ {
		ft.Observe(key(byte(i%200)), 100, 0)
	}
	s := ft.Stats()
	rate := float64(s.SampledPackets) / float64(s.ObservedPackets)
	if math.Abs(rate-0.1) > 0.01 {
		t.Fatalf("empirical sampling rate = %v", rate)
	}
}

func TestFlowTableIdleTimeout(t *testing.T) {
	ft := NewFlowTable(1, Config{SamplingRate: 1, IdleTimeout: 30}, rng.New(3))
	ft.Observe(key(1), 100, 0)
	ft.Observe(key(2), 100, 25)
	if recs := ft.Expire(29); len(recs) != 0 {
		t.Fatalf("premature expiry: %v", recs)
	}
	recs := ft.Expire(30) // key(1) idle 30s, key(2) idle 5s
	if len(recs) != 1 || recs[0].Key != key(1) {
		t.Fatalf("expiry = %+v", recs)
	}
	if s := ft.Stats(); s.ActiveFlows != 1 || s.ExpiredFlows != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestFlowTableActiveTimeout(t *testing.T) {
	ft := NewFlowTable(1, Config{SamplingRate: 1, IdleTimeout: 1000, ActiveTimeout: 60}, rng.New(4))
	ft.Observe(key(1), 100, 0)
	ft.Observe(key(1), 100, 59) // still active
	if recs := ft.Expire(59); len(recs) != 0 {
		t.Fatal("active timeout fired early")
	}
	recs := ft.Expire(60)
	if len(recs) != 1 || recs[0].Packets != 2 {
		t.Fatalf("active timeout records = %+v", recs)
	}
}

func TestFlowTableEviction(t *testing.T) {
	ft := NewFlowTable(1, Config{SamplingRate: 1, IdleTimeout: 1000, MaxEntries: 2}, rng.New(5))
	ft.Observe(key(1), 100, 0)
	ft.Observe(key(2), 100, 1)
	_, evicted := ft.Observe(key(3), 100, 2)
	if len(evicted) != 1 || evicted[0].Key != key(1) {
		t.Fatalf("evicted = %+v (want oldest, key 1)", evicted)
	}
	if s := ft.Stats(); s.EvictedFlows != 1 || s.ActiveFlows != 2 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestFlowTablePacketConservation: with rate-1 sampling, every observed
// packet appears in exactly one exported record.
func TestFlowTablePacketConservation(t *testing.T) {
	ft := NewFlowTable(1, Config{SamplingRate: 1, IdleTimeout: 5, ActiveTimeout: 17, MaxEntries: 8}, rng.New(6))
	r := rng.New(7)
	var offered, exported uint64
	collect := func(recs []packet.Record) {
		for _, rec := range recs {
			exported += rec.Packets
		}
	}
	for now := uint32(0); now < 200; now++ {
		for i := 0; i < 20; i++ {
			_, ev := ft.Observe(key(byte(r.Intn(30))), 100, now)
			offered++
			collect(ev)
		}
		collect(ft.Expire(now))
	}
	collect(ft.Flush())
	if offered != exported {
		t.Fatalf("packet conservation violated: offered %d, exported %d", offered, exported)
	}
}

func TestExporterCollectorRoundTrip(t *testing.T) {
	col, err := NewCollector("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	exp, err := NewExporter(col.Addr(), 42)
	if err != nil {
		t.Fatal(err)
	}
	// 80 records: two full datagrams of 34 plus a flushable tail of 12.
	var recs []packet.Record
	for i := 0; i < 80; i++ {
		recs = append(recs, packet.Record{
			Key:       key(byte(i)),
			MonitorID: uint16(i % 5),
			Packets:   uint64(i + 1),
			Bytes:     uint64(100 * (i + 1)),
			Start:     uint32(i),
			End:       uint32(i + 10),
		})
	}
	if err := exp.Export(recs); err != nil {
		t.Fatal(err)
	}
	if err := exp.Flush(); err != nil {
		t.Fatal(err)
	}
	var got []packet.Record
	for len(got) < 80 {
		b, ok := <-col.Batches()
		if !ok {
			t.Fatal("collector channel closed early")
		}
		if b.Exporter != 42 {
			t.Fatalf("exporter id = %d", b.Exporter)
		}
		got = append(got, b.Records...)
	}
	if exp.Sent() != 80 {
		t.Fatalf("Sent = %d", exp.Sent())
	}
	for i, rec := range got {
		if rec != recs[i] {
			t.Fatalf("record %d mismatch: %+v != %+v", i, rec, recs[i])
		}
	}
	st := col.Stats()
	if st.Records != 80 || st.Datagrams != 3 || st.Malformed != 0 || st.LostRecords != 0 {
		t.Fatalf("collector stats = %+v", st)
	}
	es, ok := col.ExporterStats(42)
	if !ok || es.Received != 80 || es.Datagrams != 3 || es.LostRecords != 0 || es.Duplicates != 0 {
		t.Fatalf("exporter stats = %+v ok=%v", es, ok)
	}
	if err := exp.Close(); err != nil {
		t.Fatal(err)
	}
	if err := exp.Export(recs[:1]); err == nil {
		t.Fatal("export after close accepted")
	}
}

func TestExporterCloseFlushes(t *testing.T) {
	col, err := NewCollector("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	exp, err := NewExporter(col.Addr(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := exp.Export([]packet.Record{{Key: key(1), Packets: 7}}); err != nil {
		t.Fatal(err)
	}
	if err := exp.Close(); err != nil {
		t.Fatal(err)
	}
	b, ok := <-col.Batches()
	if !ok || len(b.Records) != 1 || b.Records[0].Packets != 7 {
		t.Fatalf("batch = %+v ok=%v", b, ok)
	}
}

func TestCollectorCountsSequenceGaps(t *testing.T) {
	col, err := NewCollector("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	exp, err := NewExporter(col.Addr(), 9)
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Close()
	send := func() {
		if err := exp.Export([]packet.Record{{Key: key(1), Packets: 1}}); err != nil {
			t.Fatal(err)
		}
		if err := exp.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	send()
	<-col.Batches()
	// Simulate two lost records by advancing the exporter's flow
	// sequence past them (the v5 convention: Seq counts records, so the
	// collector sees a two-record gap).
	exp.mu.Lock()
	exp.seq += 2
	exp.mu.Unlock()
	send()
	<-col.Batches()
	if st := col.Stats(); st.LostRecords != 2 {
		t.Fatalf("LostRecords = %d, want 2", st.LostRecords)
	}
	es, ok := col.ExporterStats(9)
	if !ok || es.LostRecords != 2 || es.Received != 2 || es.Datagrams != 2 {
		t.Fatalf("exporter stats = %+v ok=%v", es, ok)
	}
	if lf := es.LossFraction(); lf != 0.5 {
		t.Fatalf("LossFraction = %v, want 0.5", lf)
	}
}

func TestEstimatorBinsAndRenormalizes(t *testing.T) {
	classify := func(k packet.FiveTuple) (int, bool) {
		switch k.DstPort {
		case 80:
			return 0, true
		case 443:
			return 1, true
		}
		return 0, false
	}
	est, err := NewEstimator(300, []float64{0.01, 0.02}, classify)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(dport uint16, pkts uint64, start uint32) packet.Record {
		k := key(1)
		k.DstPort = dport
		return packet.Record{Key: k, Packets: pkts, Start: start}
	}
	est.Add(mk(80, 10, 0))
	est.Add(mk(80, 5, 299))   // same bin
	est.Add(mk(443, 8, 100))  // same bin, other OD
	est.Add(mk(80, 7, 300))   // next bin
	est.Add(mk(9999, 100, 0)) // background: ignored
	bins := est.Estimates()
	if len(bins) != 2 {
		t.Fatalf("bins = %d", len(bins))
	}
	b0 := bins[0]
	if b0.Start != 0 || b0.Sampled[0] != 15 || b0.Sampled[1] != 8 {
		t.Fatalf("bin0 = %+v", b0)
	}
	if math.Abs(b0.Estimate[0]-1500) > 1e-9 || math.Abs(b0.Estimate[1]-400) > 1e-9 {
		t.Fatalf("bin0 estimates = %v", b0.Estimate)
	}
	if bins[1].Start != 300 || bins[1].Sampled[0] != 7 {
		t.Fatalf("bin1 = %+v", bins[1])
	}
}

func TestEstimatorZeroRho(t *testing.T) {
	est, err := NewEstimator(300, []float64{0}, func(packet.FiveTuple) (int, bool) { return 0, true })
	if err != nil {
		t.Fatal(err)
	}
	est.Add(packet.Record{Key: key(1), Packets: 5, Start: 0})
	bins := est.Estimates()
	if len(bins) != 1 || bins[0].Estimate[0] != 0 {
		t.Fatalf("zero-rho estimate = %+v", bins)
	}
}

func TestEstimatorValidation(t *testing.T) {
	cl := func(packet.FiveTuple) (int, bool) { return 0, true }
	if _, err := NewEstimator(0, []float64{1}, cl); err == nil {
		t.Fatal("zero interval accepted")
	}
	if _, err := NewEstimator(300, nil, cl); err == nil {
		t.Fatal("no pairs accepted")
	}
	if _, err := NewEstimator(300, []float64{1}, nil); err == nil {
		t.Fatal("nil classifier accepted")
	}
}

// TestEndToEndPipeline wires table → exporter → collector → estimator on
// the loopback and checks the renormalized estimate is close to the true
// size.
func TestEndToEndPipeline(t *testing.T) {
	col, err := NewCollector("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	exp, err := NewExporter(col.Addr(), 1)
	if err != nil {
		t.Fatal(err)
	}
	const rate = 0.05
	ft := NewFlowTable(3, Config{SamplingRate: rate, IdleTimeout: 30}, rng.New(8))
	r := rng.New(9)
	const trueSize = 100000
	for i := 0; i < trueSize; i++ {
		// 50 concurrent flows of the same OD pair within one bin.
		k := key(byte(r.Intn(50)))
		if _, ev := ft.Observe(k, 1500, uint32(i/1000)); ev != nil {
			if err := exp.Export(ev); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := exp.Export(ft.Flush()); err != nil {
		t.Fatal(err)
	}
	if err := exp.Close(); err != nil {
		t.Fatal(err)
	}
	est, err := NewEstimator(300, []float64{rate}, func(packet.FiveTuple) (int, bool) { return 0, true })
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		for b := range col.Batches() {
			est.AddBatch(b)
		}
		close(done)
	}()
	// Loopback UDP is reliable enough in-process; wait for all records.
	for col.Stats().Records < ft.Stats().ExpiredFlows {
		if col.Stats().Malformed > 0 {
			t.Fatal("malformed datagrams")
		}
	}
	col.Close()
	<-done
	bins := est.Estimates()
	if len(bins) != 1 {
		t.Fatalf("bins = %d", len(bins))
	}
	got := bins[0].Estimate[0]
	if math.Abs(got-trueSize)/trueSize > 0.05 {
		t.Fatalf("estimate = %v, want ≈%v", got, trueSize)
	}
}

func TestPrefixClassifier(t *testing.T) {
	var tbl prefix.Table
	tbl.MustInsert(packet.AddrFrom4(10, 0, 1, 0), 24, 0)
	tbl.MustInsert(packet.AddrFrom4(10, 0, 2, 0), 24, 1)
	classify := PrefixClassifier(&tbl)
	k := key(1)
	k.Dst = packet.AddrFrom4(10, 0, 2, 77)
	if od, ok := classify(k); !ok || od != 1 {
		t.Fatalf("classify = %d,%v", od, ok)
	}
	k.Dst = packet.AddrFrom4(192, 0, 2, 1)
	if _, ok := classify(k); ok {
		t.Fatal("background traffic classified")
	}
}

// TestExporterConcurrent: multiple goroutines may share one exporter.
func TestExporterConcurrent(t *testing.T) {
	col, err := NewCollector("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	exp, err := NewExporter(col.Addr(), 5)
	if err != nil {
		t.Fatal(err)
	}
	const workers, per = 4, 200
	donech := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			for i := 0; i < per; i++ {
				err := exp.Export([]packet.Record{{Key: key(byte(w)), Packets: uint64(i + 1)}})
				if err != nil {
					donech <- err
					return
				}
			}
			donech <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-donech; err != nil {
			t.Fatal(err)
		}
	}
	if err := exp.Close(); err != nil {
		t.Fatal(err)
	}
	if exp.Sent() != workers*per {
		t.Fatalf("Sent = %d, want %d", exp.Sent(), workers*per)
	}
	// Drain what arrived; loopback may drop under burst but sequence
	// accounting must stay consistent (received + lost*34 >= sent records
	// is not exact because partial datagrams vary; just require decode
	// integrity).
	deadline := make(chan struct{})
	go func() {
		for range col.Batches() {
		}
		close(deadline)
	}()
	col.Close()
	<-deadline
	if col.Stats().Malformed != 0 {
		t.Fatalf("malformed datagrams: %+v", col.Stats())
	}
}
