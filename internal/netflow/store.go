package netflow

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"netsamp/internal/packet"
)

// Collector-side storage: the paper's pipeline exports flow records "to
// a collector for analysis and storage". RecordWriter and RecordReader
// stream records to and from a gzip-compressed archive using the
// packet.Record wire codec, with a small header carrying a magic and a
// record count for integrity checking.

// storeMagic identifies netsamp record archives ("NSAR").
var storeMagic = [4]byte{'N', 'S', 'A', 'R'}

// ErrBadArchive is returned when an archive header is malformed.
var ErrBadArchive = errors.New("netflow: not a netsamp record archive")

// RecordWriter streams flow records into a compressed archive.
type RecordWriter struct {
	gz    *gzip.Writer
	bw    *bufio.Writer
	buf   []byte
	count uint64
}

// NewRecordWriter wraps w. Close must be called to flush the stream and
// finalize the trailer.
func NewRecordWriter(w io.Writer) (*RecordWriter, error) {
	gz := gzip.NewWriter(w)
	bw := bufio.NewWriter(gz)
	if _, err := bw.Write(storeMagic[:]); err != nil {
		return nil, fmt.Errorf("netflow: write archive header: %w", err)
	}
	return &RecordWriter{gz: gz, bw: bw, buf: make([]byte, 0, packet.RecordSize)}, nil
}

// Write appends one record.
func (w *RecordWriter) Write(rec packet.Record) error {
	w.buf = rec.AppendTo(w.buf[:0])
	if _, err := w.bw.Write(w.buf); err != nil {
		return fmt.Errorf("netflow: write record: %w", err)
	}
	w.count++
	return nil
}

// Count returns the number of records written so far.
func (w *RecordWriter) Count() uint64 { return w.count }

// Close writes the trailer (record count) and flushes the compressor.
// It does not close the underlying writer.
func (w *RecordWriter) Close() error {
	var trailer [8]byte
	binary.LittleEndian.PutUint64(trailer[:], w.count)
	if _, err := w.bw.Write(trailer[:]); err != nil {
		return fmt.Errorf("netflow: write trailer: %w", err)
	}
	if err := w.bw.Flush(); err != nil {
		return err
	}
	return w.gz.Close()
}

// RecordReader streams records out of an archive produced by
// RecordWriter.
type RecordReader struct {
	gz    *gzip.Reader
	br    *bufio.Reader
	buf   []byte
	count uint64
	read  uint64
	// sized reports whether the trailer count has been consumed.
	done bool
}

// NewRecordReader opens an archive for reading.
func NewRecordReader(r io.Reader) (*RecordReader, error) {
	gz, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("netflow: open archive: %w", err)
	}
	br := bufio.NewReader(gz)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, ErrBadArchive
	}
	if magic != storeMagic {
		return nil, ErrBadArchive
	}
	return &RecordReader{gz: gz, br: br, buf: make([]byte, packet.RecordSize)}, nil
}

// Next returns the next record, or io.EOF after the last one. The
// trailer count is verified on EOF; a mismatch (truncated archive)
// returns ErrBadArchive.
func (r *RecordReader) Next() (packet.Record, error) {
	var rec packet.Record
	if r.done {
		return rec, io.EOF
	}
	// A record needs RecordSize bytes; the trailer is 8 bytes. Peek to
	// distinguish: if fewer than RecordSize bytes remain, expect the
	// trailer.
	head, err := r.br.Peek(packet.RecordSize)
	if err != nil {
		// Fewer than RecordSize bytes left: must be exactly the trailer.
		trailer, terr := io.ReadAll(r.br)
		if terr != nil {
			return rec, fmt.Errorf("netflow: read trailer: %w", terr)
		}
		if len(trailer) != 8 {
			return rec, ErrBadArchive
		}
		r.count = binary.LittleEndian.Uint64(trailer)
		r.done = true
		if r.count != r.read {
			return rec, ErrBadArchive
		}
		return rec, io.EOF
	}
	// RecordSize bytes are available, but they could still be the
	// trailer plus the start of nothing — impossible, since the trailer
	// is only 8 bytes and nothing follows it. Safe to decode.
	if err := rec.DecodeFromBytes(head); err != nil {
		return rec, err
	}
	if _, err := r.br.Discard(packet.RecordSize); err != nil {
		return rec, err
	}
	r.read++
	return rec, nil
}

// Close releases the decompressor. It does not close the underlying
// reader.
func (r *RecordReader) Close() error { return r.gz.Close() }
