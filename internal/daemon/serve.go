package daemon

import (
	"context"

	"netsamp/internal/supervise"
)

// The supervision primitives live in internal/supervise so the ingest
// tier can share them without importing the serve loop (which would
// cycle through eval). The aliases keep this package's historical API:
// daemon.Supervisor and daemon.CrashError are the same types.
type (
	// Task is one supervised attempt of a long-running operation; see
	// supervise.Task.
	Task = supervise.Task
	// CrashError is a panic captured by the supervisor; see
	// supervise.CrashError.
	CrashError = supervise.CrashError
	// Supervisor restarts a failing Task with bounded exponential
	// backoff; see supervise.Supervisor.
	Supervisor = supervise.Supervisor
)

// Serve is the supervised serve loop: each attempt re-opens the
// persistence directory (restoring from the newest checkpoint a previous
// attempt left behind) and runs until done or crash. This is what
// `netsamp serve` runs.
func Serve(ctx context.Context, cfg Config, sup *Supervisor) error {
	if sup == nil {
		sup = &Supervisor{}
	}
	return sup.Run(ctx, func(ctx context.Context, progress func()) error {
		loop, err := Open(cfg)
		if err != nil {
			return err
		}
		defer loop.Close()
		return loop.Run(ctx, progress)
	})
}
