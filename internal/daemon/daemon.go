// Package daemon runs the monitoring control loop as a crash-safe,
// long-running service: per-interval worlds are synthesized, the
// controller re-optimizes, every decision is journaled write-ahead, and
// the controller state is checkpointed periodically through
// internal/state. Because every stochastic input — traffic jitter,
// fault draws, solver job seeds — is a pure function of (seed, domain,
// interval, entity), a loop restored from its latest checkpoint
// re-executes the intervals after it and produces a decision sequence
// bit-identical to the uninterrupted run; the surviving journal tail is
// cross-checked against the re-derived decisions, so silent divergence
// is detected, not assumed away.
package daemon

import (
	"context"
	"fmt"
	"math"
	"path/filepath"
	"time"

	"netsamp/internal/control"
	"netsamp/internal/core"
	"netsamp/internal/eval"
	"netsamp/internal/faults"
	"netsamp/internal/geant"
	"netsamp/internal/state"
	"netsamp/internal/topology"
)

// Config parameterizes a serve loop.
type Config struct {
	// Dir is the persistence directory (snapshots + journal).
	Dir string
	// Seed drives every stochastic input: world synthesis, fault draws,
	// solver job seeds. A checkpointed run must be resumed with the same
	// seed; the checkpoint records and enforces it.
	Seed uint64
	// Theta is the sampling budget in packets per measurement interval.
	Theta float64
	// Intervals is the total number of intervals to run; 0 means run
	// until the context is cancelled.
	Intervals int
	// CheckpointEvery is the checkpoint cadence in intervals (default 8).
	CheckpointEvery int
	// Workers bounds each interval's concurrent solves (0 = GOMAXPROCS).
	Workers int

	// Controller knobs (see control.Options).
	SmoothAlpha  float64
	SwitchGain   float64
	ReviveAfter  int
	SolveTimeout time.Duration

	// Robust configures uncertainty-aware operation (see
	// control.RobustOptions). Like the other controller knobs it is part
	// of the checkpoint's configuration identity: a checkpoint written
	// under one robust posture cannot be resumed under another.
	Robust control.RobustOptions

	// Faults is the injected fault plan. Its Seed field is overridden
	// with Config.Seed so one seed governs the whole run.
	Faults faults.Config

	// LossProbe, when non-nil, supplies each interval's transport-loss
	// fraction — the share of exporter records the ingest tier lost or
	// shed (ingest.Collector.LossFraction is the intended source) —
	// which feeds control.StepInput.TransportLoss so overload widens
	// the tracker's confidence instead of silently biasing the plan.
	// A live probe is not a pure function of (seed, interval), so runs
	// with a probe forfeit bit-identical replay: the journal
	// cross-check after a restore is disabled while one is set.
	// Out-of-range probe values are clamped, never fatal — a sick
	// ingest tier must not take the control loop down with it.
	LossProbe func() float64

	// CrashAt injects a panic at the start of the given interval (> 0;
	// 0 disables) — the fault hook the supervised-restart and recovery
	// tests kill the loop with.
	CrashAt int

	// AfterInterval, when non-nil, observes each completed interval's
	// encoded decision record (tests capture sequences with it).
	AfterInterval func(interval int, record []byte)
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

func (c Config) checkpointEvery() int {
	if c.CheckpointEvery <= 0 {
		return 8
	}
	return c.CheckpointEvery
}

func (c Config) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// daemonSnapVersion stamps the checkpoint payload. Version 2 added the
// robust-control knobs to the configuration digest; version-1
// checkpoints are still accepted and decode with zeroed robust fields,
// so the configuration-identity check naturally rejects them when the
// resuming configuration enables robust control.
const daemonSnapVersion = 2

// legacyDaemonSnapVersion is the newest prior checkpoint version Open
// still restores.
const legacyDaemonSnapVersion = 1

// journalName is the decision journal's file name inside Config.Dir.
const journalName = "decisions.nsj"

// Loop is an open serve loop: scenario, controller, fault plan and the
// persistence stores. Construct with Open, drive with Run, release with
// Close.
type Loop struct {
	cfg      Config
	scenario *geant.Scenario
	plan     *faults.Plan
	ctrl     *control.Controller
	snaps    *state.SnapshotStore
	journal  *state.Journal
	// next is the next interval to execute; everything before it is
	// covered by the restored checkpoint.
	next int
	// expected maps intervals to the journal records that survived past
	// the checkpoint boundary: re-executed decisions must reproduce them
	// bit-exactly.
	expected map[int][]byte
	// restored reports whether Open resumed from a checkpoint.
	restored bool
}

// Open builds the loop and restores it from the newest valid checkpoint
// in cfg.Dir, if any: the controller state is reinstalled, the journal's
// torn tail (if a crash left one) is truncated, and journal records from
// intervals after the checkpoint become cross-check expectations for the
// deterministic re-execution.
func Open(cfg Config) (*Loop, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("daemon: no persistence directory")
	}
	if !(cfg.Theta > 0) {
		return nil, fmt.Errorf("daemon: theta %v, want > 0", cfg.Theta)
	}
	cfg.Faults.Seed = cfg.Seed
	fplan, err := faults.NewPlan(cfg.Faults)
	if err != nil {
		return nil, err
	}
	ctrl, err := control.New(control.Options{
		Budget:       core.BudgetPerInterval(cfg.Theta, eval.Interval),
		SmoothAlpha:  cfg.SmoothAlpha,
		SwitchGain:   cfg.SwitchGain,
		ReviveAfter:  cfg.ReviveAfter,
		SolveTimeout: cfg.SolveTimeout,
		Robust:       cfg.Robust,
	})
	if err != nil {
		return nil, err
	}
	snaps, err := state.OpenSnapshots(cfg.Dir)
	if err != nil {
		return nil, err
	}
	l := &Loop{
		cfg:      cfg,
		scenario: geant.MustBuild(1),
		plan:     fplan,
		ctrl:     ctrl,
		snaps:    snaps,
		expected: make(map[int][]byte),
	}

	// Restore: newest checkpoint that verifies, else run from scratch.
	if payload, seq, err := snaps.Load(); err == nil {
		lastDone, err := l.restore(payload)
		if err != nil {
			return nil, fmt.Errorf("daemon: checkpoint %d: %w", seq, err)
		}
		l.next = lastDone + 1
		l.restored = true
		cfg.logf("daemon: restored checkpoint %d (interval %d, %d corrupt generation(s) skipped)",
			seq, lastDone, snaps.Corrupted())
	} else if err != state.ErrNoSnapshot {
		return nil, err
	}

	journal, records, err := state.OpenJournal(filepath.Join(cfg.Dir, journalName))
	if err != nil {
		return nil, err
	}
	l.journal = journal
	if journal.Torn() {
		cfg.logf("daemon: journal had a torn tail; truncated")
	}
	// Split the journal at the checkpoint boundary: records up to it are
	// settled history; records past it were written after the checkpoint
	// and must be reproduced bit-exactly by the re-execution.
	keep := 0
	for _, rec := range records {
		v, t, err := recordInterval(rec)
		if err != nil {
			return nil, err
		}
		if t < l.next {
			keep++
			continue
		}
		// Records past the checkpoint are truncated below and re-derived
		// by the re-execution; only same-version records are usable as
		// bit-exact expectations (re-encoding always stamps the current
		// version, so an older record would be a guaranteed mismatch).
		// A live loss probe makes re-execution legitimately divergent —
		// the probe's readings are not replayable — so no expectations
		// are collected under one.
		if v == recordVersion && cfg.LossProbe == nil {
			l.expected[t] = append([]byte{}, rec...)
		}
	}
	if err := journal.TruncateTo(keep); err != nil {
		return nil, err
	}
	return l, nil
}

// NextInterval returns the next interval the loop will execute.
func (l *Loop) NextInterval() int { return l.next }

// Restored reports whether Open resumed from a checkpoint.
func (l *Loop) Restored() bool { return l.restored }

// Close releases the journal handle. It does not checkpoint; Run
// checkpoints on its way out.
func (l *Loop) Close() error {
	if l.journal == nil {
		return nil
	}
	err := l.journal.Close()
	l.journal = nil
	return err
}

// Run executes intervals until the configured count is reached or ctx is
// cancelled. Cancellation drains gracefully: the in-flight interval
// finishes (its solve is bounded by SolveTimeout, not by ctx),
// a final checkpoint is written, and Run returns nil. progress, when
// non-nil, is invoked after every durable checkpoint — the supervisor
// uses it to reset its consecutive-failure counter.
func (l *Loop) Run(ctx context.Context, progress func()) error {
	every := l.cfg.checkpointEvery()
	for t := l.next; l.cfg.Intervals == 0 || t < l.cfg.Intervals; t++ {
		if ctx.Err() != nil {
			return l.drain(progress)
		}
		if l.cfg.CrashAt > 0 && t == l.cfg.CrashAt {
			panic(fmt.Sprintf("daemon: injected crash at interval %d", t))
		}
		world, err := eval.IntervalWorld(l.scenario, t, l.cfg.Seed)
		if err != nil {
			return err
		}
		// Drift faults perturb the true loads the controller observes;
		// LoadDrift is a pure function of (seed, interval, link), so the
		// perturbed sequence replays bit-identically after a restore.
		if fc := l.plan.Config(); fc.DriftVol > 0 || fc.DriftStep > 0 {
			for i := range world.Loads {
				world.Loads[i] *= l.plan.LoadDrift(t, topology.LinkID(i))
			}
		}
		// The step runs on a background context so a graceful drain lets
		// it finish; SolveTimeout still bounds a hung solve.
		d, err := l.ctrl.StepResilient(context.Background(), control.StepInput{
			Matrix:        l.scenario.Matrix,
			Loads:         world.Loads,
			Candidates:    l.scenario.MonitorLinks,
			InvSizes:      world.Inv,
			Workers:       l.cfg.Workers,
			Down:          l.plan.DownSet(t, l.scenario.MonitorLinks),
			FailSolve:     l.plan.SolverOverrun(t),
			TransportLoss: l.probeLoss(),
		})
		if err != nil {
			return fmt.Errorf("daemon: interval %d: %w", t, err)
		}
		rec := encodeDecision(t, d)
		if want, ok := l.expected[t]; ok {
			if string(rec) != string(want) {
				return fmt.Errorf("daemon: interval %d: recovered decision diverges from the journaled one", t)
			}
			delete(l.expected, t)
		}
		// Write-ahead: the decision is durable before the loop advances.
		if err := l.journal.Append(rec); err != nil {
			return err
		}
		l.next = t + 1
		if l.cfg.AfterInterval != nil {
			l.cfg.AfterInterval(t, rec)
		}
		if (t+1)%every == 0 {
			if err := l.checkpoint(); err != nil {
				return err
			}
			if progress != nil {
				progress()
			}
		}
	}
	return l.drain(progress)
}

// probeLoss reads the configured loss probe, clamped into the [0, 1)
// domain the controller accepts — NaN and negatives read as 0, a probe
// claiming total loss is capped just under 1.
func (l *Loop) probeLoss() float64 {
	if l.cfg.LossProbe == nil {
		return 0
	}
	loss := l.cfg.LossProbe()
	switch {
	case math.IsNaN(loss) || loss < 0:
		return 0
	case loss >= 1:
		return 0.999999
	}
	return loss
}

// drain writes the final checkpoint of a graceful exit.
func (l *Loop) drain(progress func()) error {
	if l.next == 0 {
		return nil // nothing completed; nothing worth checkpointing
	}
	if err := l.checkpoint(); err != nil {
		return err
	}
	if progress != nil {
		progress()
	}
	return nil
}

// checkpoint persists the loop's state: configuration digest (seed,
// theta, fault plan, controller knobs), the last completed interval, and
// the controller's snapshot.
//
//netsamp:codec pair=restore
func (l *Loop) checkpoint() error {
	ctrlBlob, err := l.ctrl.Snapshot().MarshalBinary()
	if err != nil {
		return err
	}
	faultsBlob, err := l.cfg.Faults.MarshalBinary()
	if err != nil {
		return err
	}
	var e state.Encoder
	e.U16(daemonSnapVersion)
	e.U64(l.cfg.Seed)
	e.F64(l.cfg.Theta)
	e.Bytes(faultsBlob)
	e.F64(l.cfg.SmoothAlpha)
	e.F64(l.cfg.SwitchGain)
	e.I64(int64(l.cfg.ReviveAfter))
	e.U8(uint8(l.cfg.Robust.Mode))
	e.F64(l.cfg.Robust.ExplorationFrac)
	e.F64(l.cfg.Robust.WidenFactor)
	e.I64(int64(l.next - 1)) // last completed interval
	e.Bytes(ctrlBlob)
	if err := l.snaps.Save(e.Data()); err != nil {
		return err
	}
	l.cfg.logf("daemon: checkpointed through interval %d", l.next-1)
	return nil
}

// restore decodes a checkpoint payload, verifies it belongs to this
// configuration, reinstalls the controller state, and returns the last
// completed interval.
func (l *Loop) restore(payload []byte) (int, error) {
	d := state.NewDecoder(payload)
	v := d.U16()
	if d.Err() == nil && v != daemonSnapVersion && v != legacyDaemonSnapVersion {
		return 0, fmt.Errorf("unknown checkpoint version %d", v)
	}
	seed := d.U64()
	theta := d.F64()
	faultsBlob := d.Bytes()
	alpha := d.F64()
	gain := d.F64()
	revive := int(d.I64())
	var robust control.RobustOptions
	if v >= 2 {
		robust.Mode = core.RobustMode(d.U8())
		robust.ExplorationFrac = d.F64()
		robust.WidenFactor = d.F64()
	}
	lastDone := int(d.I64())
	ctrlBlob := d.Bytes()
	if err := d.Finish(); err != nil {
		return 0, err
	}
	var savedFaults faults.Config
	if err := savedFaults.UnmarshalBinary(faultsBlob); err != nil {
		return 0, err
	}
	cfgFaults := l.cfg.Faults
	cfgFaults.Seed = l.cfg.Seed
	// A checkpoint is only replayable under the configuration that wrote
	// it, bit for bit — tolerance here would accept a divergent replay.
	//netsamp:floateq-ok config identity must be exact for the checkpoint to be replayable
	if seed != l.cfg.Seed || theta != l.cfg.Theta || savedFaults != cfgFaults ||
		//netsamp:floateq-ok config identity must be exact for the checkpoint to be replayable
		alpha != l.cfg.SmoothAlpha || gain != l.cfg.SwitchGain || revive != l.cfg.ReviveAfter ||
		//netsamp:floateq-ok config identity must be exact for the checkpoint to be replayable
		robust != l.cfg.Robust {
		return 0, fmt.Errorf("checkpoint belongs to a different configuration (seed %d theta %v)", seed, theta)
	}
	if lastDone < 0 {
		return 0, fmt.Errorf("checkpoint carries invalid interval %d", lastDone)
	}
	var st control.State
	if err := st.UnmarshalBinary(ctrlBlob); err != nil {
		return 0, err
	}
	if err := l.ctrl.Restore(st); err != nil {
		return 0, err
	}
	return lastDone, nil
}

// recordVersion stamps every journal decision record. Version 2 added
// the exploration-reserve link list; version-1 records still decode
// (with no Explored links), but are not used as recovery cross-check
// expectations — a re-execution always re-encodes at the current
// version, so comparing across versions would be a guaranteed false
// divergence.
const recordVersion = 2

// legacyRecordVersion is the newest prior record version DecodeDecision
// still reads.
const legacyRecordVersion = 1

// Decision record flags.
const (
	flagDegraded   = 1 << 0
	flagSetChanged = 1 << 1
)

// DecisionRecord is a decoded journal record: one interval's decision in
// its durable form.
type DecisionRecord struct {
	Interval   int
	Degraded   bool
	SetChanged bool
	Gain       float64
	Uncovered  int
	Excluded   []topology.LinkID
	Plan       map[topology.LinkID]float64
	// Explored lists the links granted a slice of the exploration
	// reserve this interval (robust control only; record version >= 2).
	Explored []topology.LinkID
}

// encodeDecision serializes one interval's decision deterministically:
// excluded links and plan entries in ascending LinkID order, floats as
// IEEE-754 bits. Two identical decisions always encode to identical
// bytes — the property the recovery cross-check compares.
//
//netsamp:codec pair=DecodeDecision
func encodeDecision(interval int, d *control.Decision) []byte {
	var e state.Encoder
	e.U16(recordVersion)
	e.U32(uint32(interval))
	var flags uint8
	if d.Degraded {
		flags |= flagDegraded
	}
	if d.SetChanged {
		flags |= flagSetChanged
	}
	e.U8(flags)
	e.F64(d.Gain)
	e.U32(uint32(d.Uncovered))
	e.U32(uint32(len(d.Excluded)))
	for _, lid := range d.Excluded {
		e.I64(int64(lid))
	}
	links := topology.SortedKeys(d.Plan)
	e.U32(uint32(len(links)))
	for _, lid := range links {
		e.I64(int64(lid))
		e.F64(d.Plan[lid])
	}
	e.U32(uint32(len(d.Explored)))
	for _, lid := range d.Explored {
		e.I64(int64(lid))
	}
	return e.Data()
}

// recordInterval peeks a record's version and interval without a full
// decode.
func recordInterval(rec []byte) (version uint16, interval int, err error) {
	d := state.NewDecoder(rec)
	v := d.U16()
	if d.Err() == nil && v != recordVersion && v != legacyRecordVersion {
		return 0, 0, fmt.Errorf("daemon: unknown journal record version %d", v)
	}
	t := int(d.U32())
	if err := d.Err(); err != nil {
		return 0, 0, err
	}
	return v, t, nil
}

// DecodeDecision decodes one journal record.
func DecodeDecision(rec []byte) (DecisionRecord, error) {
	d := state.NewDecoder(rec)
	var out DecisionRecord
	v := d.U16()
	if d.Err() == nil && v != recordVersion && v != legacyRecordVersion {
		return out, fmt.Errorf("daemon: unknown journal record version %d", v)
	}
	out.Interval = int(d.U32())
	flags := d.U8()
	out.Degraded = flags&flagDegraded != 0
	out.SetChanged = flags&flagSetChanged != 0
	out.Gain = d.F64()
	out.Uncovered = int(d.U32())
	n := d.Len(8)
	for i := 0; i < n; i++ {
		out.Excluded = append(out.Excluded, topology.LinkID(d.I64()))
	}
	n = d.Len(16)
	if n > 0 {
		out.Plan = make(map[topology.LinkID]float64, n)
	}
	for i := 0; i < n; i++ {
		lid := topology.LinkID(d.I64())
		out.Plan[lid] = d.F64()
	}
	if v >= 2 {
		n = d.Len(8)
		for i := 0; i < n; i++ {
			out.Explored = append(out.Explored, topology.LinkID(d.I64()))
		}
	}
	return out, d.Finish()
}

// ReadDecisions loads and decodes the full decision journal in dir — the
// ops/debugging view of what the daemon deployed, interval by interval.
func ReadDecisions(dir string) ([]DecisionRecord, error) {
	j, records, err := state.OpenJournal(filepath.Join(dir, journalName))
	if err != nil {
		return nil, err
	}
	defer j.Close()
	out := make([]DecisionRecord, 0, len(records))
	for _, rec := range records {
		dr, err := DecodeDecision(rec)
		if err != nil {
			return nil, err
		}
		out = append(out, dr)
	}
	return out, nil
}
