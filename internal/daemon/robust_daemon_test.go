package daemon

import (
	"context"
	"math"
	"strings"
	"testing"

	"netsamp/internal/control"
	"netsamp/internal/core"
	"netsamp/internal/state"
	"netsamp/internal/topology"
)

// robustConfig is baseConfig plus load drift and an uncertainty-aware
// controller — the full robustness surface under the recovery harness.
func robustConfig(dir string) Config {
	cfg := baseConfig(dir)
	cfg.Robust = control.RobustOptions{
		Mode:            core.RobustPessimistic,
		ExplorationFrac: 0.1,
		WidenFactor:     1.3,
	}
	cfg.Faults.DriftVol = 0.2
	cfg.Faults.DriftStep = 0.05
	return cfg
}

// TestRobustKillRestoreBitIdentical: the recovery guarantee holds with
// the robust controller and drifting loads — a loop killed mid-run and
// reopened reproduces the uninterrupted decision sequence bit-exactly,
// including the journaled exploration-reserve grants.
func TestRobustKillRestoreBitIdentical(t *testing.T) {
	refDir := t.TempDir()
	refLoop, err := Open(robustConfig(refDir))
	if err != nil {
		t.Fatal(err)
	}
	if err := refLoop.Run(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	refLoop.Close()
	want := journalRecords(t, refDir)

	dir := t.TempDir()
	cfg := robustConfig(dir)
	cfg.CrashAt = 10
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("injected crash did not fire")
			}
		}()
		loop, err := Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer loop.Close()
		loop.Run(context.Background(), nil)
	}()

	cfg.CrashAt = 0
	loop, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer loop.Close()
	if !loop.Restored() {
		t.Fatal("loop did not restore from the checkpoint")
	}
	if err := loop.Run(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, journalRecords(t, dir), want)

	// The exploration reserve must actually show up in the durable
	// record stream: some interval granted probe rates.
	decs, err := ReadDecisions(dir)
	if err != nil {
		t.Fatal(err)
	}
	explored := 0
	for _, d := range decs {
		explored += len(d.Explored)
	}
	if explored == 0 {
		t.Fatal("no interval journaled an exploration grant")
	}
}

// TestLossProbeFeedsControllerAndDisablesCrossCheck: a live loss probe
// feeds each interval's transport-loss fraction into the robust step —
// widening the tracker against the probe-free run — and, because probe
// readings are not replayable, a restored loop skips the bit-identical
// journal cross-check instead of reporting false divergence. Degenerate
// probe readings are clamped, never fatal.
func TestLossProbeFeedsControllerAndDisablesCrossCheck(t *testing.T) {
	run := func(cfg Config) *Loop {
		t.Helper()
		loop, err := Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := loop.Run(context.Background(), nil); err != nil {
			t.Fatal(err)
		}
		loop.Close()
		return loop
	}

	clean := run(robustConfig(t.TempDir()))
	lossyCfg := robustConfig(t.TempDir())
	lossyCfg.LossProbe = func() float64 { return 0.5 }
	lossy := run(lossyCfg)
	cs, ls := clean.ctrl.TrackerState(), lossy.ctrl.TrackerState()
	wider := false
	for i := range cs.Rel {
		if ls.Rel[i] > cs.Rel[i] {
			wider = true
		}
		if ls.Rel[i] < cs.Rel[i] {
			t.Fatalf("link %d: probe run rel %v narrower than clean %v", i, ls.Rel[i], cs.Rel[i])
		}
	}
	if !wider {
		t.Fatal("a 50% loss probe left every tracked interval unchanged")
	}

	// Crash mid-run with a probe whose readings change across the
	// restart: restore must succeed (no cross-check against the
	// journaled tail) and the run completes all intervals.
	dir := t.TempDir()
	cfg := robustConfig(dir)
	cfg.CrashAt = 10
	loss := 0.1
	cfg.LossProbe = func() float64 { return loss }
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("injected crash did not fire")
			}
		}()
		loop, err := Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer loop.Close()
		loop.Run(context.Background(), nil)
	}()
	cfg.CrashAt = 0
	loss = 0.7 // post-restart readings diverge from the journaled tail
	loop, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer loop.Close()
	if !loop.Restored() {
		t.Fatal("loop did not restore from the checkpoint")
	}
	if len(loop.expected) != 0 {
		t.Fatalf("%d cross-check expectations collected under a live probe", len(loop.expected))
	}
	if err := loop.Run(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	if got := len(journalRecords(t, dir)); got != cfg.Intervals {
		t.Fatalf("journal has %d records, want %d", got, cfg.Intervals)
	}

	// Clamping: NaN, negative and >= 1 readings are tolerated.
	for _, bad := range []float64{math.NaN(), -3, 1, 42} {
		cfg := robustConfig(t.TempDir())
		cfg.Intervals = 2
		cfg.LossProbe = func() float64 { return bad }
		run(cfg)
	}
}

// TestRobustPostureMismatchRejected: a checkpoint is only replayable
// under the robust posture that wrote it — resuming with a different
// posture (including none) must be rejected, in both directions.
func TestRobustPostureMismatchRejected(t *testing.T) {
	run := func(cfg Config) {
		t.Helper()
		cfg.Intervals = 4
		loop, err := Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer loop.Close()
		if err := loop.Run(context.Background(), nil); err != nil {
			t.Fatal(err)
		}
	}
	reopen := func(cfg Config) error {
		cfg.Intervals = 4
		loop, err := Open(cfg)
		if err == nil {
			loop.Close()
		}
		return err
	}

	robustDir := t.TempDir()
	run(robustConfig(robustDir))
	plain := robustConfig(robustDir)
	plain.Robust = control.RobustOptions{}
	if err := reopen(plain); err == nil || !strings.Contains(err.Error(), "different configuration") {
		t.Fatalf("robust checkpoint resumed without robust control: %v", err)
	}

	plainDir := t.TempDir()
	base := baseConfig(plainDir)
	run(base)
	upgraded := base
	upgraded.Robust = control.RobustOptions{Mode: core.RobustPessimistic, ExplorationFrac: 0.1, WidenFactor: 1.3}
	if err := reopen(upgraded); err == nil || !strings.Contains(err.Error(), "different configuration") {
		t.Fatalf("plain checkpoint resumed with robust control: %v", err)
	}
}

// TestDecodeLegacyV1Record: version-1 journal records (no exploration
// list) still decode, with Explored empty.
func TestDecodeLegacyV1Record(t *testing.T) {
	var e state.Encoder
	e.U16(1) // legacy record version
	e.U32(3)
	e.U8(flagDegraded)
	e.F64(0.5)
	e.U32(2)
	e.U32(1)
	e.I64(9)
	e.U32(1)
	e.I64(4)
	e.F64(0.25)
	rec := e.Data()

	dr, err := DecodeDecision(rec)
	if err != nil {
		t.Fatal(err)
	}
	if dr.Interval != 3 || !dr.Degraded || dr.Uncovered != 2 ||
		len(dr.Excluded) != 1 || dr.Excluded[0] != topology.LinkID(9) ||
		len(dr.Plan) != 1 || dr.Plan[topology.LinkID(4)] != 0.25 ||
		dr.Explored != nil {
		t.Fatalf("legacy decode mismatch: %+v", dr)
	}

	// And the version/interval peek accepts it too.
	v, interval, err := recordInterval(rec)
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 || interval != 3 {
		t.Fatalf("recordInterval = (%d, %d), want (1, 3)", v, interval)
	}
}
