package daemon

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"netsamp/internal/faults"
	"netsamp/internal/state"
)

// baseConfig is the shared run configuration of the recovery tests: a
// fault plan that exercises monitor outages, rate clamps and solver
// overruns, so recovered runs must reproduce fallback and probation
// decisions too, not just the happy path.
func baseConfig(dir string) Config {
	return Config{
		Dir:             dir,
		Seed:            7,
		Theta:           100000,
		Intervals:       12,
		CheckpointEvery: 4,
		SmoothAlpha:     0.5,
		SwitchGain:      0.01,
		ReviveAfter:     2,
		Faults: faults.Config{
			MonitorCrash:  0.05,
			MeanOutage:    2,
			MaxOutage:     4,
			RateClamp:     0.1,
			SolverOverrun: 0.08,
		},
	}
}

// journalRecords reopens dir's journal and returns the raw record bytes.
func journalRecords(t *testing.T, dir string) [][]byte {
	t.Helper()
	j, recs, err := state.OpenJournal(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	out := make([][]byte, len(recs))
	for i, r := range recs {
		out[i] = append([]byte{}, r...)
	}
	return out
}

var (
	refOnce    sync.Once
	refRecords [][]byte
	refErr     error
)

// reference runs the 12-interval scenario uninterrupted, once per test
// binary, and returns its decision records — the sequence every
// recovered run must reproduce bit-identically.
func reference(t *testing.T) [][]byte {
	t.Helper()
	refOnce.Do(func() {
		dir, err := os.MkdirTemp("", "daemon-ref-*")
		if err != nil {
			refErr = err
			return
		}
		defer os.RemoveAll(dir)
		loop, err := Open(baseConfig(dir))
		if err != nil {
			refErr = err
			return
		}
		defer loop.Close()
		if err := loop.Run(context.Background(), nil); err != nil {
			refErr = err
			return
		}
		j, recs, err := state.OpenJournal(filepath.Join(dir, journalName))
		if err != nil {
			refErr = err
			return
		}
		defer j.Close()
		for _, r := range recs {
			refRecords = append(refRecords, append([]byte{}, r...))
		}
	})
	if refErr != nil {
		t.Fatal(refErr)
	}
	return refRecords
}

func requireIdentical(t *testing.T, got, want [][]byte) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("decision sequence has %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			gd, _ := DecodeDecision(got[i])
			wd, _ := DecodeDecision(want[i])
			t.Fatalf("record %d diverges:\ngot  %+v\nwant %+v", i, gd, wd)
		}
	}
}

// TestKillRestoreBitIdentical is the headline recovery test: the loop is
// killed by an injected panic at an arbitrary interval, reopened from
// disk, and must complete with a decision sequence bit-identical to the
// uninterrupted run's.
func TestKillRestoreBitIdentical(t *testing.T) {
	want := reference(t)
	dir := t.TempDir()
	cfg := baseConfig(dir)
	cfg.CrashAt = 10 // past the second checkpoint (through interval 7)

	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("injected crash did not fire")
			}
		}()
		loop, err := Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer loop.Close()
		loop.Run(context.Background(), nil)
	}()

	cfg.CrashAt = 0
	loop, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer loop.Close()
	if !loop.Restored() {
		t.Fatal("loop did not restore from the checkpoint")
	}
	if loop.NextInterval() != 8 {
		t.Fatalf("restored at interval %d, want 8 (last checkpoint)", loop.NextInterval())
	}
	if err := loop.Run(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, journalRecords(t, dir), want)

	// The decoded journal is the full interval sequence, in order.
	decs, err := ReadDecisions(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(decs) != cfg.Intervals {
		t.Fatalf("%d decisions, want %d", len(decs), cfg.Intervals)
	}
	for i, d := range decs {
		if d.Interval != i {
			t.Fatalf("decision %d carries interval %d", i, d.Interval)
		}
		if len(d.Plan) == 0 {
			t.Fatalf("interval %d deployed an empty plan", i)
		}
	}
}

// TestCorruptSnapshotFallsBack: when the newest checkpoint is corrupted
// on disk, recovery falls back to the previous generation and still
// reproduces the uninterrupted sequence bit-identically.
func TestCorruptSnapshotFallsBack(t *testing.T) {
	want := reference(t)
	dir := t.TempDir()
	cfg := baseConfig(dir)
	cfg.CrashAt = 10

	func() {
		defer func() { recover() }()
		loop, err := Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer loop.Close()
		loop.Run(context.Background(), nil)
	}()

	// Flip a payload byte in the newest snapshot generation.
	snaps, err := filepath.Glob(filepath.Join(dir, "snap-*.nss"))
	if err != nil || len(snaps) < 2 {
		t.Fatalf("want 2 snapshot generations, have %v", snaps)
	}
	newest := snaps[len(snaps)-1]
	blob, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)-1] ^= 0xff
	if err := os.WriteFile(newest, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	cfg.CrashAt = 0
	loop, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer loop.Close()
	// Fell back to the first checkpoint (through interval 3).
	if loop.NextInterval() != 4 {
		t.Fatalf("restored at interval %d, want 4 (previous generation)", loop.NextInterval())
	}
	if err := loop.Run(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, journalRecords(t, dir), want)
}

// TestTornJournalTail: garbage appended to the journal (a torn write) is
// truncated on reopen and recovery still converges bit-identically.
func TestTornJournalTail(t *testing.T) {
	want := reference(t)
	dir := t.TempDir()
	cfg := baseConfig(dir)
	cfg.CrashAt = 10

	func() {
		defer func() { recover() }()
		loop, err := Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer loop.Close()
		loop.Run(context.Background(), nil)
	}()

	jp := filepath.Join(dir, journalName)
	f, err := os.OpenFile(jp, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	cfg.CrashAt = 0
	loop, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer loop.Close()
	if err := loop.Run(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, journalRecords(t, dir), want)
}

// TestGracefulDrain: cancelling the context finishes the in-flight
// interval, checkpoints, and returns nil; a later reopen resumes at the
// drained interval and the combined sequence matches the reference.
func TestGracefulDrain(t *testing.T) {
	want := reference(t)
	dir := t.TempDir()
	cfg := baseConfig(dir)
	cfg.Intervals = 0 // run until cancelled
	ctx, cancel := context.WithCancel(context.Background())
	cfg.AfterInterval = func(interval int, _ []byte) {
		if interval == 5 { // not a checkpoint multiple: drain must checkpoint itself
			cancel()
		}
	}
	loop, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := loop.Run(ctx, nil); err != nil {
		t.Fatalf("graceful drain returned %v, want nil", err)
	}
	loop.Close()

	cfg.AfterInterval = nil
	cfg.Intervals = 12
	loop, err = Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer loop.Close()
	if loop.NextInterval() != 6 {
		t.Fatalf("resumed at interval %d, want 6 (drain checkpoint)", loop.NextInterval())
	}
	if err := loop.Run(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, journalRecords(t, dir), want)
}

// TestDivergenceDetected: a journal record that does not match the
// deterministic re-execution is reported, not silently replaced.
func TestDivergenceDetected(t *testing.T) {
	dir := t.TempDir()
	cfg := baseConfig(dir)
	cfg.Intervals = 4
	loop, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := loop.Run(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	loop.Close()

	// Forge a valid-framed record for interval 4 with contents the
	// re-execution cannot produce.
	j, _, err := state.OpenJournal(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatal(err)
	}
	var e state.Encoder
	e.U16(recordVersion)
	e.U32(4)
	e.U8(0)
	e.F64(12345.0)
	e.U32(0)
	e.U32(0)
	e.U32(0)
	if err := j.Append(e.Data()); err != nil {
		t.Fatal(err)
	}
	j.Close()

	cfg.Intervals = 8
	loop, err = Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer loop.Close()
	err = loop.Run(context.Background(), nil)
	if err == nil || !strings.Contains(err.Error(), "diverges") {
		t.Fatalf("divergence not detected: %v", err)
	}
}

// TestConfigMismatchRejected: a checkpoint written under one
// configuration refuses to restore under another.
func TestConfigMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	cfg := baseConfig(dir)
	cfg.Intervals = 4
	loop, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := loop.Run(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	loop.Close()

	for _, mutate := range []func(*Config){
		func(c *Config) { c.Seed = 8 },
		func(c *Config) { c.Theta = 200000 },
		func(c *Config) { c.Faults.MonitorCrash = 0.5 },
		func(c *Config) { c.SwitchGain = 0.5 },
		func(c *Config) { c.ReviveAfter = 7 },
	} {
		bad := baseConfig(dir)
		mutate(&bad)
		if _, err := Open(bad); err == nil {
			t.Fatalf("mismatched configuration accepted: %+v", bad)
		}
	}
}

// TestServeSupervisedRestart: the supervised entry point survives the
// injected crash — the second attempt restores and completes, and the
// journal matches the uninterrupted reference.
func TestServeSupervisedRestart(t *testing.T) {
	want := reference(t)
	dir := t.TempDir()
	cfg := baseConfig(dir)
	cfg.CrashAt = 10

	var logs []string
	sup := &Supervisor{
		MaxFailures: 3,
		Sleep:       func(context.Context, time.Duration) {},
		Logf:        func(f string, a ...any) { logs = append(logs, f) },
	}
	attempt := 0
	err := sup.Run(context.Background(), func(ctx context.Context, progress func()) error {
		attempt++
		c := cfg
		if attempt > 1 {
			c.CrashAt = 0 // the crash is transient; later attempts run clean
		}
		loop, err := Open(c)
		if err != nil {
			return err
		}
		defer loop.Close()
		return loop.Run(ctx, progress)
	})
	if err != nil {
		t.Fatal(err)
	}
	if attempt != 2 {
		t.Fatalf("%d attempts, want 2", attempt)
	}
	requireIdentical(t, journalRecords(t, dir), want)
}

// TestSupervisorGivesUp: a task that fails without ever making progress
// is abandoned after MaxFailures consecutive failures, with exponential
// backoff between restarts.
func TestSupervisorGivesUp(t *testing.T) {
	var delays []time.Duration
	sup := &Supervisor{
		MaxFailures: 4,
		Backoff:     100 * time.Millisecond,
		MaxBackoff:  250 * time.Millisecond,
		Sleep:       func(_ context.Context, d time.Duration) { delays = append(delays, d) },
	}
	calls := 0
	err := sup.Run(context.Background(), func(context.Context, func()) error {
		calls++
		return errors.New("boom")
	})
	if err == nil {
		t.Fatal("supervisor did not give up")
	}
	if calls != 4 {
		t.Fatalf("%d attempts, want 4", calls)
	}
	wantDelays := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 250 * time.Millisecond}
	if len(delays) != len(wantDelays) {
		t.Fatalf("backoff schedule %v, want %v", delays, wantDelays)
	}
	for i := range wantDelays {
		if delays[i] != wantDelays[i] {
			t.Fatalf("backoff schedule %v, want %v", delays, wantDelays)
		}
	}
}

// TestSupervisorProgressResetsFailures: progress between failures resets
// the consecutive-failure counter, so a long-running loop that crashes
// occasionally — but checkpoints in between — is restarted indefinitely.
func TestSupervisorProgressResetsFailures(t *testing.T) {
	sup := &Supervisor{
		MaxFailures: 2,
		Sleep:       func(context.Context, time.Duration) {},
	}
	calls := 0
	err := sup.Run(context.Background(), func(_ context.Context, progress func()) error {
		calls++
		if calls <= 3 {
			progress() // durable forward progress, then a crash
			return errors.New("crash after checkpoint")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("supervisor gave up on a progressing task: %v", err)
	}
	if calls != 4 {
		t.Fatalf("%d attempts, want 4", calls)
	}
}

// TestSupervisorCapturesCrashStack: a panicking task is converted into a
// CrashError carrying the crashed goroutine's stack.
func TestSupervisorCapturesCrashStack(t *testing.T) {
	sup := &Supervisor{
		MaxFailures: 1,
		Sleep:       func(context.Context, time.Duration) {},
	}
	err := sup.Run(context.Background(), func(context.Context, func()) error {
		crashHere()
		return nil
	})
	var ce *CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("want CrashError, got %v", err)
	}
	if ce.Value != "kersplat" {
		t.Fatalf("crash value %v", ce.Value)
	}
	if !strings.Contains(string(ce.Stack), "crashHere") {
		t.Fatalf("stack does not name the crash site:\n%s", ce.Stack)
	}
	if !strings.Contains(err.Error(), "crashHere") {
		t.Fatal("error text does not carry the stack")
	}
}

func crashHere() { panic("kersplat") }

// TestSupervisorHonorsCancellation: a cancelled context stops the
// restart loop with ctx.Err().
func TestSupervisorHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	sup := &Supervisor{
		MaxFailures: 100,
		Sleep:       func(context.Context, time.Duration) { cancel() },
	}
	err := sup.Run(ctx, func(context.Context, func()) error {
		return errors.New("boom")
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestOpenValidation covers the front-door input checks.
func TestOpenValidation(t *testing.T) {
	if _, err := Open(Config{Theta: 1}); err == nil {
		t.Fatal("empty dir accepted")
	}
	if _, err := Open(Config{Dir: t.TempDir()}); err == nil {
		t.Fatal("zero theta accepted")
	}
}
