// Package supervise restarts failing long-running tasks with bounded
// exponential backoff, converting panics into errors that carry the
// crashed goroutine's stack. It is the shared crash-recovery primitive
// of the serve loop (internal/daemon) and the ingest tier's shard
// workers (internal/ingest) — a leaf package so both can use it without
// coupling to each other.
package supervise

import (
	"context"
	"fmt"
	"runtime/debug"
	"time"
)

// Task is one supervised attempt of a long-running operation. progress
// must be called whenever the task makes durable forward progress (the
// serve loop calls it after every checkpoint); the supervisor resets its
// consecutive-failure counter on progress, so a loop that crashes every
// few hours is restarted forever while one that crashes before its first
// checkpoint gives up after MaxFailures attempts.
type Task func(ctx context.Context, progress func()) error

// CrashError is a panic captured by the supervisor, with the stack of
// the crashed goroutine.
type CrashError struct {
	Value any
	Stack []byte
}

func (e *CrashError) Error() string {
	return fmt.Sprintf("supervise: task panicked: %v\n%s", e.Value, e.Stack)
}

// Supervisor restarts a failing Task with bounded exponential backoff.
type Supervisor struct {
	// MaxFailures is how many consecutive failures (no progress in
	// between) are tolerated before Run gives up (default 5).
	MaxFailures int
	// Backoff is the delay before the first restart (default 100ms); it
	// doubles per consecutive failure, capped at MaxBackoff (default 30s).
	Backoff    time.Duration
	MaxBackoff time.Duration
	// Sleep replaces the inter-restart wait (tests capture the backoff
	// schedule with it); nil uses a context-aware time.Sleep.
	Sleep func(ctx context.Context, d time.Duration)
	// Logf, when non-nil, receives restart/give-up log lines.
	Logf func(format string, args ...any)
}

func (s *Supervisor) maxFailures() int {
	if s.MaxFailures <= 0 {
		return 5
	}
	return s.MaxFailures
}

func (s *Supervisor) backoff() time.Duration {
	if s.Backoff <= 0 {
		return 100 * time.Millisecond
	}
	return s.Backoff
}

func (s *Supervisor) maxBackoff() time.Duration {
	if s.MaxBackoff <= 0 {
		return 30 * time.Second
	}
	return s.MaxBackoff
}

func (s *Supervisor) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

func (s *Supervisor) sleep(ctx context.Context, d time.Duration) {
	if s.Sleep != nil {
		s.Sleep(ctx, d)
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// Run invokes task, restarting it on error or panic with exponential
// backoff. Panics become *CrashError values carrying the goroutine
// stack, so the crash site is in the restart log, not lost with the
// process. Run returns nil when the task completes, ctx.Err() when the
// context is cancelled, and the last failure (wrapped) once MaxFailures
// consecutive failures accumulate without intervening progress.
func (s *Supervisor) Run(ctx context.Context, task Task) error {
	failures := 0
	delay := s.backoff()
	for {
		err := s.attempt(ctx, task, func() {
			failures = 0
			delay = s.backoff()
		})
		if err == nil {
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		failures++
		if failures >= s.maxFailures() {
			s.logf("supervise: giving up after %d consecutive failures: %v", failures, err)
			return fmt.Errorf("supervise: %d consecutive failures, last: %w", failures, err)
		}
		s.logf("supervise: task failed (%d/%d), restarting in %v: %v", failures, s.maxFailures(), delay, err)
		s.sleep(ctx, delay)
		if ctx.Err() != nil {
			return ctx.Err()
		}
		delay *= 2
		if max := s.maxBackoff(); delay > max {
			delay = max
		}
	}
}

// attempt runs one task invocation, converting a panic into *CrashError.
func (s *Supervisor) attempt(ctx context.Context, task Task, progress func()) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &CrashError{Value: v, Stack: debug.Stack()}
		}
	}()
	return task(ctx, progress)
}
