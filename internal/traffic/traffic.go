// Package traffic models the offered load of the backbone: origin-
// destination demands (a traffic matrix), the per-link loads U_e they
// induce under the routing, and the flow-level structure (heavy-tailed
// flow sizes) the sampling accuracy depends on.
//
// The paper's evaluation uses post-processed sampled NetFlow from GEANT
// as ground truth. That dataset is proprietary, so this package provides
// the synthetic equivalent: explicit demands for the OD pairs under
// study plus a gravity-model background matrix, both routed over the
// real topology to obtain link loads, and a flow generator that converts
// a demand (pkt/s) into individual flows within a measurement interval.
package traffic

import (
	"fmt"
	"math"

	"netsamp/internal/rng"
	"netsamp/internal/routing"
	"netsamp/internal/topology"
)

// DefaultInterval is the paper's measurement interval: 5 minutes, chosen
// to absorb clock skew between routers exporting flow records.
const DefaultInterval = 300.0 // seconds

// Demand is the average packet rate of one OD pair.
type Demand struct {
	Pair routing.ODPair
	Rate float64 // packets per second
}

// Matrix is a set of OD demands (a traffic matrix in list form).
type Matrix struct {
	Demands []Demand
}

// Total returns the total offered packet rate.
func (m *Matrix) Total() float64 {
	s := 0.0
	for _, d := range m.Demands {
		s += d.Rate
	}
	return s
}

// Gravity generates a gravity-model traffic matrix over every ordered
// pair of distinct nodes with positive mass: the demand of (s, d) is
// proportional to mass[s]*mass[d], scaled so the total offered rate is
// totalRate. Nodes missing from mass (or with non-positive mass)
// originate and attract no traffic. A small multiplicative jitter
// (lognormal, sigma=jitter) is applied per pair when jitter > 0, drawn
// from r.
func Gravity(g *topology.Graph, mass map[topology.NodeID]float64, totalRate, jitter float64, r *rng.Source) *Matrix {
	type ent struct {
		id topology.NodeID
		w  float64
	}
	var nodes []ent
	for n := 0; n < g.NumNodes(); n++ {
		id := topology.NodeID(n)
		if w := mass[id]; w > 0 {
			nodes = append(nodes, ent{id, w})
		}
	}
	var demands []Demand
	sum := 0.0
	for _, s := range nodes {
		for _, d := range nodes {
			if s.id == d.id {
				continue
			}
			rate := s.w * d.w
			if jitter > 0 && r != nil {
				rate *= r.LogNormal(0, jitter)
			}
			demands = append(demands, Demand{
				Pair: routing.ODPair{
					Name: g.Node(s.id).Name + "->" + g.Node(d.id).Name,
					Src:  s.id,
					Dst:  d.id,
				},
				Rate: rate,
			})
			sum += rate
		}
	}
	if sum > 0 {
		scale := totalRate / sum
		for i := range demands {
			demands[i].Rate *= scale
		}
	}
	return &Matrix{Demands: demands}
}

// Merge returns a matrix containing the demands of m followed by those
// of others.
func (m *Matrix) Merge(others ...*Matrix) *Matrix {
	out := &Matrix{Demands: append([]Demand(nil), m.Demands...)}
	for _, o := range others {
		out.Demands = append(out.Demands, o.Demands...)
	}
	return out
}

// LinkLoads routes every demand over tbl and accumulates the per-link
// packet rates U_e (indexed by topology.LinkID). Demands between
// identical endpoints are rejected; unroutable demands return an error.
func LinkLoads(g *topology.Graph, tbl *routing.Table, m *Matrix) ([]float64, error) {
	loads := make([]float64, g.NumLinks())
	for _, d := range m.Demands {
		if d.Rate < 0 {
			return nil, fmt.Errorf("traffic: negative rate for %q", d.Pair.Name)
		}
		if d.Pair.Src == d.Pair.Dst {
			return nil, fmt.Errorf("traffic: demand %q has identical endpoints", d.Pair.Name)
		}
		p, err := tbl.PathBetween(d.Pair.Src, d.Pair.Dst)
		if err != nil {
			return nil, fmt.Errorf("traffic: demand %q: %w", d.Pair.Name, err)
		}
		for _, lid := range p.Links {
			loads[lid] += d.Rate
		}
	}
	return loads, nil
}

// LinkLoadsECMP routes every demand over the full equal-cost multipath
// DAG, splitting each demand according to the per-link fractions, and
// accumulates the per-link packet rates U_e. Use it together with
// routing.BuildMatrixECMP when the network load-balances across equal
// IGP costs.
func LinkLoadsECMP(g *topology.Graph, tbl *routing.Table, m *Matrix) ([]float64, error) {
	loads := make([]float64, g.NumLinks())
	for _, d := range m.Demands {
		if d.Rate < 0 {
			return nil, fmt.Errorf("traffic: negative rate for %q", d.Pair.Name)
		}
		if d.Pair.Src == d.Pair.Dst {
			return nil, fmt.Errorf("traffic: demand %q has identical endpoints", d.Pair.Name)
		}
		hops, err := tbl.Fractions(d.Pair.Src, d.Pair.Dst)
		if err != nil {
			return nil, fmt.Errorf("traffic: demand %q: %w", d.Pair.Name, err)
		}
		for _, h := range hops {
			loads[h.Link] += d.Rate * h.Frac
		}
	}
	return loads, nil
}

// SizeDist is a flow-size distribution in packets. MeanInverse returns
// E[1/S], the quantity the paper's utility function is parameterized by
// (Section IV-C); implementations may return an analytic value or a
// Monte-Carlo estimate.
type SizeDist interface {
	// Sample draws a flow size in packets (always >= 1).
	Sample(r *rng.Source) int64
	// MeanInverse returns E[1/S].
	MeanInverse() float64
}

// FixedSize is a degenerate distribution: every flow has exactly N
// packets. Useful in tests, where E[1/S] = 1/N exactly.
type FixedSize struct{ N int64 }

// Sample implements SizeDist.
func (f FixedSize) Sample(*rng.Source) int64 {
	if f.N < 1 {
		return 1
	}
	return f.N
}

// MeanInverse implements SizeDist.
func (f FixedSize) MeanInverse() float64 {
	if f.N < 1 {
		return 1
	}
	return 1 / float64(f.N)
}

// ParetoSize draws flow sizes from a discretized bounded Pareto
// distribution: Sample = ceil(Pareto(Xm, Alpha)) clamped to MaxPackets.
// Internet flow sizes are famously heavy-tailed; the paper's Figure 1
// plots utilities for mean flow sizes around 500 and 1500 packets, which
// this distribution reproduces with suitable parameters.
type ParetoSize struct {
	Xm         float64 // scale (minimum size), packets
	Alpha      float64 // tail exponent, > 1 for finite mean
	MaxPackets int64   // clamp; 0 means no clamp
	// meanInv caches the Monte-Carlo estimate of E[1/S].
	meanInv float64
}

// NewParetoSize builds a ParetoSize and precomputes E[1/S] by a
// deterministic Monte-Carlo estimate (the discretized, clamped
// distribution has no convenient closed form).
func NewParetoSize(xm, alpha float64, maxPackets int64) *ParetoSize {
	p := &ParetoSize{Xm: xm, Alpha: alpha, MaxPackets: maxPackets}
	r := rng.New(0x9a7e70)
	const n = 60000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / float64(p.Sample(r))
	}
	p.meanInv = sum / n
	return p
}

// Sample implements SizeDist.
func (p *ParetoSize) Sample(r *rng.Source) int64 {
	v := int64(math.Ceil(r.Pareto(p.Xm, p.Alpha)))
	if v < 1 {
		v = 1
	}
	if p.MaxPackets > 0 && v > p.MaxPackets {
		v = p.MaxPackets
	}
	return v
}

// MeanInverse implements SizeDist.
func (p *ParetoSize) MeanInverse() float64 { return p.meanInv }

// FlowSet is the flow-level decomposition of one OD pair's traffic in a
// measurement interval.
type FlowSet struct {
	Sizes []int64 // packets per flow
	Total int64   // sum of Sizes
}

// GenerateFlows decomposes rate (pkt/s) over an interval of the given
// length into flows drawn from dist, stopping when the cumulative packet
// count reaches rate*interval (the final flow is truncated so the total
// matches exactly). The result has Total == round(rate*interval) unless
// that is zero, in which case a single 1-packet flow is emitted so every
// OD pair under study is estimable.
func GenerateFlows(rate, interval float64, dist SizeDist, r *rng.Source) *FlowSet {
	target := int64(math.Round(rate * interval))
	if target <= 0 {
		return &FlowSet{Sizes: []int64{1}, Total: 1}
	}
	fs := &FlowSet{}
	for fs.Total < target {
		s := dist.Sample(r)
		if remaining := target - fs.Total; s > remaining {
			s = remaining
		}
		fs.Sizes = append(fs.Sizes, s)
		fs.Total += s
	}
	return fs
}

// MeanInverseSize returns the empirical E[1/S] of the flow set. The
// utility the optimizer maximizes is parameterized by this quantity.
func (fs *FlowSet) MeanInverseSize() float64 {
	if len(fs.Sizes) == 0 {
		return 0
	}
	sum := 0.0
	for _, s := range fs.Sizes {
		sum += 1 / float64(s)
	}
	return sum / float64(len(fs.Sizes))
}

// Scale returns a copy of the matrix with every demand multiplied by
// factor. Factors below zero are rejected by the load computation later.
func (m *Matrix) Scale(factor float64) *Matrix {
	out := &Matrix{Demands: make([]Demand, len(m.Demands))}
	copy(out.Demands, m.Demands)
	for i := range out.Demands {
		out.Demands[i].Rate *= factor
	}
	return out
}

// Diurnal is a day-shaped load profile: interval t of a period maps to
// a multiplicative factor oscillating between Trough and Peak with
// optional lognormal noise. Backbone traffic famously follows such
// cycles; the paper's argument for re-optimization rests on them.
type Diurnal struct {
	// Period is the number of measurement intervals per cycle (e.g.
	// 288 five-minute intervals per day).
	Period int
	// Trough and Peak bound the cycle (e.g. 0.4 and 1.0).
	Trough, Peak float64
	// Noise is the sigma of per-interval lognormal jitter (0 disables).
	Noise float64
}

// Factor returns the load multiplier for interval t, drawing noise from
// r when configured.
func (d Diurnal) Factor(t int, r *rng.Source) float64 {
	period := d.Period
	if period <= 0 {
		period = 288
	}
	peak, trough := d.Peak, d.Trough
	if peak <= 0 {
		peak = 1
	}
	if trough <= 0 || trough > peak {
		trough = peak / 2
	}
	phase := 2 * math.Pi * float64(t%period) / float64(period)
	mid := (peak + trough) / 2
	amp := (peak - trough) / 2
	f := mid - amp*math.Cos(phase) // trough at t=0, peak mid-period
	if d.Noise > 0 && r != nil {
		f *= r.LogNormal(0, d.Noise)
	}
	if f <= 0 {
		f = trough
	}
	return f
}

// TimedFlow is a flow with arrival time and duration inside a
// measurement interval: Size packets spread uniformly over
// [Start, Start+Duration).
type TimedFlow struct {
	Size     int64
	Start    float64 // seconds from interval start
	Duration float64 // seconds, >= 0 (0 means single burst)
}

// TimedFlowSet decomposes one OD pair's interval traffic into flows
// with arrival times.
type TimedFlowSet struct {
	Flows []TimedFlow
	Total int64
}

// GenerateTimedFlows is GenerateFlows plus temporal structure: flow
// arrivals are uniform over the interval (a Poisson process conditioned
// on the flow count) and each flow lasts an exponential duration with
// the given mean, truncated at the interval end. The flow-level replay
// in cmd/netflow-sim uses this to drive the flow tables' idle and
// active timeouts the way real traffic does.
func GenerateTimedFlows(rate, interval float64, dist SizeDist, meanDuration float64, r *rng.Source) *TimedFlowSet {
	base := GenerateFlows(rate, interval, dist, r)
	out := &TimedFlowSet{Total: base.Total}
	for _, size := range base.Sizes {
		start := r.Float64() * interval
		dur := 0.0
		if meanDuration > 0 {
			dur = r.Exponential(1 / meanDuration)
		}
		if start+dur > interval {
			dur = interval - start
		}
		out.Flows = append(out.Flows, TimedFlow{Size: size, Start: start, Duration: dur})
	}
	return out
}
