package traffic

import (
	"math"
	"testing"

	"netsamp/internal/rng"
	"netsamp/internal/routing"
	"netsamp/internal/topology"
)

func lineGraph(t *testing.T) (*topology.Graph, []topology.NodeID, *routing.Table) {
	t.Helper()
	g := topology.New()
	ids := []topology.NodeID{g.AddNode("A"), g.AddNode("B"), g.AddNode("C")}
	g.AddDuplex(ids[0], ids[1], topology.OC48, 1)
	g.AddDuplex(ids[1], ids[2], topology.OC48, 1)
	return g, ids, routing.ComputeTable(g)
}

func TestGravityTotalAndSymmetryOfSupport(t *testing.T) {
	g, ids, _ := lineGraph(t)
	mass := map[topology.NodeID]float64{ids[0]: 2, ids[1]: 1, ids[2]: 1}
	m := Gravity(g, mass, 1000, 0, nil)
	if got := len(m.Demands); got != 6 {
		t.Fatalf("demands = %d, want 6 ordered pairs", got)
	}
	if math.Abs(m.Total()-1000) > 1e-9 {
		t.Fatalf("total = %v, want 1000", m.Total())
	}
	// A (mass 2) pairs must carry twice the rate of equal-mass pairs.
	var ab, bc float64
	for _, d := range m.Demands {
		switch d.Pair.Name {
		case "A->B":
			ab = d.Rate
		case "B->C":
			bc = d.Rate
		}
	}
	if math.Abs(ab/bc-2) > 1e-9 {
		t.Fatalf("gravity proportionality broken: A->B=%v B->C=%v", ab, bc)
	}
}

func TestGravitySkipsZeroMass(t *testing.T) {
	g, ids, _ := lineGraph(t)
	mass := map[topology.NodeID]float64{ids[0]: 1, ids[2]: 1}
	m := Gravity(g, mass, 100, 0, nil)
	if len(m.Demands) != 2 {
		t.Fatalf("demands = %d, want 2 (B has no mass)", len(m.Demands))
	}
	for _, d := range m.Demands {
		if d.Pair.Src == ids[1] || d.Pair.Dst == ids[1] {
			t.Fatalf("zero-mass node appears in %q", d.Pair.Name)
		}
	}
}

func TestGravityJitterPreservesTotal(t *testing.T) {
	g, ids, _ := lineGraph(t)
	mass := map[topology.NodeID]float64{ids[0]: 1, ids[1]: 1, ids[2]: 1}
	r := rng.New(42)
	m := Gravity(g, mass, 500, 0.5, r)
	if math.Abs(m.Total()-500) > 1e-9 {
		t.Fatalf("jittered total = %v, want 500", m.Total())
	}
	// With jitter the six rates must not all be equal.
	first := m.Demands[0].Rate
	allEqual := true
	for _, d := range m.Demands[1:] {
		if math.Abs(d.Rate-first) > 1e-12 {
			allEqual = false
		}
	}
	if allEqual {
		t.Fatal("jitter had no effect")
	}
}

func TestLinkLoadsAccumulate(t *testing.T) {
	g, ids, tbl := lineGraph(t)
	m := &Matrix{Demands: []Demand{
		{Pair: routing.ODPair{Name: "A->C", Src: ids[0], Dst: ids[2]}, Rate: 100},
		{Pair: routing.ODPair{Name: "B->C", Src: ids[1], Dst: ids[2]}, Rate: 50},
	}}
	loads, err := LinkLoads(g, tbl, m)
	if err != nil {
		t.Fatal(err)
	}
	ab, _ := g.FindLink(ids[0], ids[1])
	bc, _ := g.FindLink(ids[1], ids[2])
	cb, _ := g.FindLink(ids[2], ids[1])
	if loads[ab] != 100 {
		t.Fatalf("load(A->B) = %v", loads[ab])
	}
	if loads[bc] != 150 {
		t.Fatalf("load(B->C) = %v", loads[bc])
	}
	if loads[cb] != 0 {
		t.Fatalf("load(C->B) = %v, want 0", loads[cb])
	}
}

func TestLinkLoadsErrors(t *testing.T) {
	g, ids, tbl := lineGraph(t)
	bad := []*Matrix{
		{Demands: []Demand{{Pair: routing.ODPair{Name: "x", Src: ids[0], Dst: ids[0]}, Rate: 1}}},
		{Demands: []Demand{{Pair: routing.ODPair{Name: "y", Src: ids[0], Dst: ids[1]}, Rate: -1}}},
	}
	for i, m := range bad {
		if _, err := LinkLoads(g, tbl, m); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestMerge(t *testing.T) {
	a := &Matrix{Demands: []Demand{{Rate: 1}}}
	b := &Matrix{Demands: []Demand{{Rate: 2}, {Rate: 3}}}
	m := a.Merge(b)
	if len(m.Demands) != 3 || m.Total() != 6 {
		t.Fatalf("merge = %+v", m)
	}
	// Merge must not alias the source slices.
	m.Demands[0].Rate = 99
	if a.Demands[0].Rate == 99 {
		t.Fatal("Merge aliases input")
	}
}

func TestFixedSize(t *testing.T) {
	d := FixedSize{N: 250}
	r := rng.New(1)
	if d.Sample(r) != 250 {
		t.Fatal("FixedSize sample wrong")
	}
	if d.MeanInverse() != 1.0/250 {
		t.Fatal("FixedSize MeanInverse wrong")
	}
	zero := FixedSize{N: 0}
	if zero.Sample(r) != 1 || zero.MeanInverse() != 1 {
		t.Fatal("FixedSize zero-value handling wrong")
	}
}

func TestParetoSizeSupportAndMeanInverse(t *testing.T) {
	d := NewParetoSize(10, 1.2, 1_000_000)
	r := rng.New(2)
	for i := 0; i < 10000; i++ {
		s := d.Sample(r)
		if s < 10 || s > 1_000_000 {
			t.Fatalf("sample %d out of support", s)
		}
	}
	// Empirical check of the cached E[1/S] against a fresh estimate.
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += 1 / float64(d.Sample(r))
	}
	emp := sum / n
	if math.Abs(emp-d.MeanInverse())/emp > 0.05 {
		t.Fatalf("MeanInverse = %v, empirical %v", d.MeanInverse(), emp)
	}
}

func TestGenerateFlowsExactTotal(t *testing.T) {
	r := rng.New(3)
	dist := NewParetoSize(5, 1.3, 100000)
	fs := GenerateFlows(1000, 300, dist, r)
	if fs.Total != 300000 {
		t.Fatalf("total = %d, want 300000", fs.Total)
	}
	var sum int64
	for _, s := range fs.Sizes {
		if s < 1 {
			t.Fatalf("flow of size %d", s)
		}
		sum += s
	}
	if sum != fs.Total {
		t.Fatalf("sizes sum %d != total %d", sum, fs.Total)
	}
}

func TestGenerateFlowsTinyDemand(t *testing.T) {
	r := rng.New(4)
	fs := GenerateFlows(0.001, 300, FixedSize{N: 100}, r)
	if fs.Total != 1 || len(fs.Sizes) != 1 {
		t.Fatalf("tiny demand flow set = %+v", fs)
	}
}

func TestMeanInverseSizeEmpirical(t *testing.T) {
	fs := &FlowSet{Sizes: []int64{1, 2, 4}, Total: 7}
	want := (1.0 + 0.5 + 0.25) / 3
	if got := fs.MeanInverseSize(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("MeanInverseSize = %v, want %v", got, want)
	}
	empty := &FlowSet{}
	if empty.MeanInverseSize() != 0 {
		t.Fatal("empty flow set MeanInverseSize != 0")
	}
}

func TestLinkLoadsECMPSplits(t *testing.T) {
	g := topology.New()
	a, b, c, d := g.AddNode("A"), g.AddNode("B"), g.AddNode("C"), g.AddNode("D")
	g.AddDuplex(a, b, topology.OC48, 1)
	g.AddDuplex(a, c, topology.OC48, 1)
	g.AddDuplex(b, d, topology.OC48, 1)
	g.AddDuplex(c, d, topology.OC48, 1)
	tbl := routing.ComputeTable(g)
	m := &Matrix{Demands: []Demand{
		{Pair: routing.ODPair{Name: "A->D", Src: a, Dst: d}, Rate: 1000},
	}}
	loads, err := LinkLoadsECMP(g, tbl, m)
	if err != nil {
		t.Fatal(err)
	}
	ab, _ := g.FindLink(a, b)
	ac, _ := g.FindLink(a, c)
	bd, _ := g.FindLink(b, d)
	if math.Abs(loads[ab]-500) > 1e-9 || math.Abs(loads[ac]-500) > 1e-9 {
		t.Fatalf("ECMP split loads = %v / %v, want 500 each", loads[ab], loads[ac])
	}
	if math.Abs(loads[bd]-500) > 1e-9 {
		t.Fatalf("second hop load = %v", loads[bd])
	}
	// Single-path routing puts everything on one branch.
	sp, err := LinkLoads(g, tbl, m)
	if err != nil {
		t.Fatal(err)
	}
	if sp[ab] != 1000 || sp[ac] != 0 {
		t.Fatalf("single-path loads = %v / %v", sp[ab], sp[ac])
	}
}

func TestLinkLoadsECMPErrors(t *testing.T) {
	g, ids, tbl := lineGraph(t)
	bad := &Matrix{Demands: []Demand{{Pair: routing.ODPair{Name: "x", Src: ids[0], Dst: ids[0]}, Rate: 1}}}
	if _, err := LinkLoadsECMP(g, tbl, bad); err == nil {
		t.Fatal("degenerate demand accepted")
	}
	neg := &Matrix{Demands: []Demand{{Pair: routing.ODPair{Name: "y", Src: ids[0], Dst: ids[1]}, Rate: -1}}}
	if _, err := LinkLoadsECMP(g, tbl, neg); err == nil {
		t.Fatal("negative demand accepted")
	}
}

func TestScale(t *testing.T) {
	m := &Matrix{Demands: []Demand{{Rate: 10}, {Rate: 20}}}
	s := m.Scale(0.5)
	if s.Demands[0].Rate != 5 || s.Demands[1].Rate != 10 {
		t.Fatalf("scaled = %+v", s.Demands)
	}
	if m.Demands[0].Rate != 10 {
		t.Fatal("Scale mutated the input")
	}
}

func TestDiurnalShape(t *testing.T) {
	d := Diurnal{Period: 288, Trough: 0.4, Peak: 1.0}
	if f := d.Factor(0, nil); math.Abs(f-0.4) > 1e-12 {
		t.Fatalf("trough factor = %v", f)
	}
	if f := d.Factor(144, nil); math.Abs(f-1.0) > 1e-12 {
		t.Fatalf("peak factor = %v", f)
	}
	// Periodicity.
	if d.Factor(288, nil) != d.Factor(0, nil) {
		t.Fatal("not periodic")
	}
	// All factors within [trough, peak].
	for i := 0; i < 288; i++ {
		f := d.Factor(i, nil)
		if f < 0.4-1e-12 || f > 1.0+1e-12 {
			t.Fatalf("factor out of band at %d: %v", i, f)
		}
	}
}

func TestDiurnalNoise(t *testing.T) {
	d := Diurnal{Period: 288, Trough: 0.4, Peak: 1.0, Noise: 0.2}
	r := rng.New(5)
	a, b := d.Factor(10, r), d.Factor(10, r)
	if a == b {
		t.Fatal("noise inert")
	}
	if a <= 0 || b <= 0 {
		t.Fatal("non-positive factor")
	}
}

func TestDiurnalDefaults(t *testing.T) {
	var d Diurnal // zero value: period 288, peak 1, trough 0.5
	f := d.Factor(0, nil)
	if f <= 0 || f > 1 {
		t.Fatalf("zero-value factor = %v", f)
	}
}

func TestGenerateTimedFlows(t *testing.T) {
	r := rng.New(6)
	fs := GenerateTimedFlows(500, 300, FixedSize{N: 100}, 20, r)
	if fs.Total != 150000 {
		t.Fatalf("total = %d", fs.Total)
	}
	var sum int64
	for _, f := range fs.Flows {
		sum += f.Size
		if f.Start < 0 || f.Start >= 300 {
			t.Fatalf("start out of interval: %v", f.Start)
		}
		if f.Duration < 0 || f.Start+f.Duration > 300+1e-9 {
			t.Fatalf("flow overruns interval: start %v dur %v", f.Start, f.Duration)
		}
	}
	if sum != fs.Total {
		t.Fatalf("sizes sum %d != total %d", sum, fs.Total)
	}
	// Arrivals roughly uniform: mean start near interval/2.
	mean := 0.0
	for _, f := range fs.Flows {
		mean += f.Start
	}
	mean /= float64(len(fs.Flows))
	if mean < 100 || mean > 200 {
		t.Fatalf("mean arrival = %v, want ≈150", mean)
	}
}

func TestGenerateTimedFlowsZeroDuration(t *testing.T) {
	r := rng.New(7)
	fs := GenerateTimedFlows(10, 300, FixedSize{N: 10}, 0, r)
	for _, f := range fs.Flows {
		if f.Duration != 0 {
			t.Fatalf("duration = %v, want 0", f.Duration)
		}
	}
}
