package tomo

import (
	"math"
	"testing"

	"netsamp/internal/routing"
	"netsamp/internal/topology"
	"netsamp/internal/traffic"
)

// star builds a hub-and-spoke network: H in the middle, A,B,C spokes.
func star(t *testing.T) (*topology.Graph, *routing.Table, []routing.ODPair, []float64) {
	t.Helper()
	g := topology.New()
	h := g.AddNode("H")
	a, b, c := g.AddNode("A"), g.AddNode("B"), g.AddNode("C")
	g.AddDuplex(h, a, topology.OC48, 1)
	g.AddDuplex(h, b, topology.OC48, 1)
	g.AddDuplex(h, c, topology.OC48, 1)
	tbl := routing.ComputeTable(g)
	pairs := []routing.ODPair{
		{Name: "A->B", Src: a, Dst: b},
		{Name: "A->C", Src: a, Dst: c},
		{Name: "B->A", Src: b, Dst: a},
		{Name: "B->C", Src: b, Dst: c},
		{Name: "C->A", Src: c, Dst: a},
		{Name: "C->B", Src: c, Dst: b},
	}
	rates := []float64{4000, 1000, 3000, 500, 800, 200}
	return g, tbl, pairs, rates
}

func TestTotals(t *testing.T) {
	g, _, pairs, rates := star(t)
	origins, dests, err := Totals(g.NumNodes(), pairs, rates)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := g.NodeByName("A")
	b, _ := g.NodeByName("B")
	if origins[a] != 5000 || dests[b] != 4200 {
		t.Fatalf("origins[A]=%v dests[B]=%v", origins[a], dests[b])
	}
}

func TestTotalsErrors(t *testing.T) {
	_, _, pairs, _ := star(t)
	if _, _, err := Totals(4, pairs, []float64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, _, err := Totals(1, pairs, make([]float64, len(pairs))); err == nil {
		t.Fatal("out-of-range node accepted")
	}
}

func TestGravityProportionality(t *testing.T) {
	g, _, pairs, rates := star(t)
	origins, dests, err := Totals(g.NumNodes(), pairs, rates)
	if err != nil {
		t.Fatal(err)
	}
	est, err := Gravity(pairs, origins, dests)
	if err != nil {
		t.Fatal(err)
	}
	// Row sums of the gravity estimate match the origin totals (up to
	// the small diagonal leak inherent in the model).
	total := 0.0
	for _, e := range est {
		total += e
	}
	want := 0.0
	for _, r := range rates {
		want += r
	}
	// Conditional gravity conserves total originated traffic exactly.
	if math.Abs(total-want)/want > 1e-9 {
		t.Fatalf("gravity total = %v, truth %v", total, want)
	}
}

func TestGravityError(t *testing.T) {
	_, _, pairs, _ := star(t)
	if _, err := Gravity(pairs, make([]float64, 4), make([]float64, 4)); err == nil {
		t.Fatal("zero totals accepted")
	}
}

func TestTomogravityFitsLoads(t *testing.T) {
	g, tbl, pairs, rates := star(t)
	matrix, err := routing.BuildMatrix(tbl, pairs)
	if err != nil {
		t.Fatal(err)
	}
	demands := &traffic.Matrix{}
	for k := range pairs {
		demands.Demands = append(demands.Demands, traffic.Demand{Pair: pairs[k], Rate: rates[k]})
	}
	loads, err := traffic.LinkLoads(g, tbl, demands)
	if err != nil {
		t.Fatal(err)
	}
	origins, dests, err := Totals(g.NumNodes(), pairs, rates)
	if err != nil {
		t.Fatal(err)
	}
	prior, err := Gravity(pairs, origins, dests)
	if err != nil {
		t.Fatal(err)
	}
	est, err := Tomogravity(Instance{Matrix: matrix, Loads: loads, NumNodes: g.NumNodes()}, prior, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The corrected estimate must reproduce the link loads (the defining
	// property of tomogravity).
	fitted := make([]float64, len(loads))
	for k := range pairs {
		for _, lid := range matrix.Rows[k] {
			fitted[lid] += est[k]
		}
	}
	for i := range loads {
		if loads[i] == 0 {
			continue
		}
		if math.Abs(fitted[i]-loads[i])/loads[i] > 0.01 {
			t.Fatalf("link %d: fitted %v, observed %v", i, fitted[i], loads[i])
		}
	}
	// And it must improve on the raw gravity prior in total error.
	errOf := func(e []float64) float64 {
		s := 0.0
		for k := range rates {
			s += math.Abs(e[k] - rates[k])
		}
		return s
	}
	if errOf(est) > errOf(prior)+1e-6 {
		t.Fatalf("tomogravity error %v worse than gravity %v", errOf(est), errOf(prior))
	}
}

func TestTomogravityPerfectPriorStays(t *testing.T) {
	// With the truth as prior, the correction must vanish.
	g, tbl, pairs, rates := star(t)
	matrix, err := routing.BuildMatrix(tbl, pairs)
	if err != nil {
		t.Fatal(err)
	}
	demands := &traffic.Matrix{}
	for k := range pairs {
		demands.Demands = append(demands.Demands, traffic.Demand{Pair: pairs[k], Rate: rates[k]})
	}
	loads, err := traffic.LinkLoads(g, tbl, demands)
	if err != nil {
		t.Fatal(err)
	}
	est, err := Tomogravity(Instance{Matrix: matrix, Loads: loads, NumNodes: g.NumNodes()}, rates, 0)
	if err != nil {
		t.Fatal(err)
	}
	for k := range rates {
		if math.Abs(est[k]-rates[k])/rates[k] > 0.01 {
			t.Fatalf("pair %d moved: %v vs %v", k, est[k], rates[k])
		}
	}
}

func TestTomogravityValidation(t *testing.T) {
	_, tbl, pairs, _ := star(t)
	matrix, err := routing.BuildMatrix(tbl, pairs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Tomogravity(Instance{Matrix: matrix, Loads: make([]float64, 6)}, []float64{1}, 0); err == nil {
		t.Fatal("bad prior length accepted")
	}
}
