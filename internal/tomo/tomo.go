// Package tomo implements the traffic-matrix estimation techniques the
// paper positions itself against (Section II cites Medina et al., Zhang
// et al., Soule et al.): inferring OD demands from cheap aggregate link
// counters (the SNMP view) instead of sampling packets.
//
//   - Gravity: T_ij ∝ O_i·D_j from per-node origination/termination
//     totals — no routing information used.
//   - Tomogravity: the gravity estimate corrected by a minimum-norm
//     least-squares adjustment so the routed estimate reproduces the
//     observed link loads: T = T_g + Rᵀλ with (RRᵀ + ridge·I)λ = L − R·T_g.
//
// The eval harness compares both against the paper's sampled-NetFlow
// estimates: aggregate counters recover large OD pairs but are nearly
// blind to small ones — the paper's motivating claim ("the aggregate
// counters are of little use to operators … estimating network traffic
// demands").
package tomo

import (
	"fmt"

	"netsamp/internal/linalg"
	"netsamp/internal/routing"
)

// Instance is a traffic-matrix estimation problem: the OD pairs to
// estimate (with their routing) and the observed per-link loads.
type Instance struct {
	// Matrix routes every OD pair (single-path).
	Matrix *routing.Matrix
	// Loads is the observed packet rate per link (the SNMP counters),
	// indexed by topology.LinkID.
	Loads []float64
	// NumNodes sizes the origination/termination accumulators.
	NumNodes int
}

// Totals derives per-node origination and termination rates from ground
// truth demands (operators know these from ingress accounting, which
// needs no per-packet sampling).
func Totals(numNodes int, pairs []routing.ODPair, rates []float64) (origins, dests []float64, err error) {
	if len(pairs) != len(rates) {
		return nil, nil, fmt.Errorf("tomo: %d pairs, %d rates", len(pairs), len(rates))
	}
	origins = make([]float64, numNodes)
	dests = make([]float64, numNodes)
	for k, p := range pairs {
		if int(p.Src) >= numNodes || int(p.Dst) >= numNodes {
			return nil, nil, fmt.Errorf("tomo: pair %q references node outside graph", p.Name)
		}
		origins[p.Src] += rates[k]
		dests[p.Dst] += rates[k]
	}
	return origins, dests, nil
}

// Gravity returns the conditional gravity estimate for each OD pair:
// traffic originated at node i is spread over destinations j ≠ i in
// proportion to their termination totals,
//
//	T_ij = O_i · D_j / (ΣD − D_i),
//
// which conserves each node's origination total exactly. It uses no
// routing or load information (the pure SNMP-free estimate).
func Gravity(pairs []routing.ODPair, origins, dests []float64) ([]float64, error) {
	total := 0.0
	for _, d := range dests {
		total += d
	}
	if total <= 0 {
		return nil, fmt.Errorf("tomo: no terminating traffic")
	}
	out := make([]float64, len(pairs))
	for k, p := range pairs {
		den := total - dests[p.Src]
		if den <= 0 {
			continue // node terminates everything: no outbound estimate
		}
		out[k] = origins[p.Src] * dests[p.Dst] / den
	}
	return out, nil
}

// Tomogravity corrects a prior estimate to reproduce the observed link
// loads with the minimum-norm adjustment:
//
//	T = prior + Rᵀλ,  (R·Rᵀ + ridge·I)·λ = L − R·prior,
//
// solved with the Cholesky factorization from internal/linalg. Negative
// corrected entries are clamped to zero (demands are non-negative).
// ridge regularizes redundant link rows; 0 selects a small default.
func Tomogravity(in Instance, prior []float64, ridge float64) ([]float64, error) {
	nPairs := len(in.Matrix.Pairs)
	if len(prior) != nPairs {
		return nil, fmt.Errorf("tomo: prior has %d entries for %d pairs", len(prior), nPairs)
	}
	if ridge <= 0 {
		ridge = 1e-6
	}
	nLinks := len(in.Loads)
	// Residual r = L − R·prior.
	resid := make(linalg.Vector, nLinks)
	copy(resid, in.Loads)
	for k := range in.Matrix.Pairs {
		for j, lid := range in.Matrix.Rows[k] {
			f := 1.0
			if in.Matrix.Fracs != nil && in.Matrix.Fracs[k] != nil {
				f = in.Matrix.Fracs[k][j]
			}
			resid[lid] -= f * prior[k]
		}
	}
	// Gram matrix G = R·Rᵀ + ridge·I, assembled sparsely: G[a][b] =
	// Σ_k f_ka·f_kb over pairs crossing both links.
	g := linalg.NewMatrix(nLinks, nLinks)
	for k := range in.Matrix.Pairs {
		row := in.Matrix.Rows[k]
		for i, la := range row {
			fa := 1.0
			if in.Matrix.Fracs != nil && in.Matrix.Fracs[k] != nil {
				fa = in.Matrix.Fracs[k][i]
			}
			for j, lb := range row {
				fb := 1.0
				if in.Matrix.Fracs != nil && in.Matrix.Fracs[k] != nil {
					fb = in.Matrix.Fracs[k][j]
				}
				g.Set(int(la), int(lb), g.At(int(la), int(lb))+fa*fb)
			}
		}
	}
	// Scale the ridge with the Gram diagonal so regularization is
	// relative, not absolute.
	maxDiag := 1.0
	for i := 0; i < nLinks; i++ {
		if d := g.At(i, i); d > maxDiag {
			maxDiag = d
		}
	}
	for i := 0; i < nLinks; i++ {
		g.Set(i, i, g.At(i, i)+ridge*maxDiag)
	}
	chol, err := linalg.FactorCholesky(g)
	if err != nil {
		return nil, fmt.Errorf("tomo: gram factorization: %w", err)
	}
	lambda, err := chol.Solve(resid)
	if err != nil {
		return nil, err
	}
	// T = prior + Rᵀλ, clamped at zero.
	out := make([]float64, nPairs)
	for k := range in.Matrix.Pairs {
		t := prior[k]
		for j, lid := range in.Matrix.Rows[k] {
			f := 1.0
			if in.Matrix.Fracs != nil && in.Matrix.Fracs[k] != nil {
				f = in.Matrix.Fracs[k][j]
			}
			t += f * lambda[lid]
		}
		if t < 0 {
			t = 0
		}
		out[k] = t
	}
	return out, nil
}
