package packet

import (
	"math"
	"testing"
)

// checkPartition asserts the partition invariants: range 0 starts at 0,
// the last ends at MaxUint64, consecutive ranges are adjacent, and no
// range is empty — together these guarantee every hash has exactly one
// owner.
func checkPartition(t *testing.T, ranges []HashRange) {
	t.Helper()
	if len(ranges) == 0 {
		return
	}
	if ranges[0].Lo != 0 {
		t.Fatalf("first range starts at %d, want 0", ranges[0].Lo)
	}
	if ranges[len(ranges)-1].Hi != ^uint64(0) {
		t.Fatalf("last range ends at %d, want MaxUint64", ranges[len(ranges)-1].Hi)
	}
	for i, r := range ranges {
		if r.Empty() {
			t.Fatalf("range %d empty: %+v", i, r)
		}
		if i > 0 && r.Lo != ranges[i-1].Hi+1 {
			t.Fatalf("range %d starts at %d, previous ended at %d", i, r.Lo, ranges[i-1].Hi)
		}
	}
}

// owners counts how many ranges contain h.
func owners(ranges []HashRange, h uint64) int {
	n := 0
	for _, r := range ranges {
		if r.Contains(h) {
			n++
		}
	}
	return n
}

func TestHashRangeBasics(t *testing.T) {
	full := HashRange{Lo: 0, Hi: ^uint64(0)}
	if !full.Contains(0) || !full.Contains(^uint64(0)) || full.Empty() {
		t.Fatal("full range misbehaves")
	}
	if full.Width() != ^uint64(0) {
		t.Fatalf("full width saturation: %d", full.Width())
	}
	if !EmptyHashRange.Empty() || EmptyHashRange.Contains(0) || EmptyHashRange.Width() != 0 {
		t.Fatal("canonical empty range misbehaves")
	}
	point := HashRange{Lo: 7, Hi: 7}
	if !point.Contains(7) || point.Contains(6) || point.Contains(8) || point.Width() != 1 {
		t.Fatal("point range misbehaves")
	}
}

func TestPartitionHashSpaceProportional(t *testing.T) {
	ranges := make([]HashRange, 4)
	shares := []float64{1, 1, 2, 4}
	PartitionHashSpace(ranges, shares)
	checkPartition(t, ranges)
	total := 0.0
	for _, s := range shares {
		total += s
	}
	for i, r := range ranges {
		got := float64(r.Width()) / math.Pow(2, 64)
		want := shares[i] / total
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("range %d covers %.12f of the space, want %.12f", i, got, want)
		}
	}
}

func TestPartitionHashSpaceDegenerate(t *testing.T) {
	// One share owns everything.
	one := make([]HashRange, 1)
	PartitionHashSpace(one, []float64{0.25})
	checkPartition(t, one)

	// A tiny share squeezed between huge ones still gets a non-empty
	// range and the partition stays exact.
	ranges := make([]HashRange, 3)
	PartitionHashSpace(ranges, []float64{1e300, 1e-300, 1e300})
	checkPartition(t, ranges)

	// More ranges than distinguishable boundaries near the top.
	many := make([]HashRange, 64)
	shares := make([]float64, 64)
	for i := range shares {
		shares[i] = 1e-30
	}
	shares[0] = 1e30 // pushes every later cumulative fraction to ~1
	PartitionHashSpace(many, shares)
	checkPartition(t, many)
}

func TestPartitionHashSpacePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"length mismatch": func() { PartitionHashSpace(make([]HashRange, 1), []float64{1, 1}) },
		"zero total":      func() { PartitionHashSpace(make([]HashRange, 2), []float64{0, 0}) },
		"nan total":       func() { PartitionHashSpace(make([]HashRange, 1), []float64{math.NaN()}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestPartitionOwnsEveryFlowKey drives real flow keys through the
// partition: for any key, exactly one range contains its hash — the
// property that makes coordinated sampling duplicate-free and gap-free.
func TestPartitionOwnsEveryFlowKey(t *testing.T) {
	ranges := make([]HashRange, 3)
	PartitionHashSpace(ranges, []float64{0.003, 0.001, 0.002})
	for i := 0; i < 5000; i++ {
		key := FiveTuple{
			Src: Addr(i * 2654435761), Dst: Addr(^uint32(0) - uint32(i)),
			SrcPort: uint16(i), DstPort: uint16(i >> 3), Proto: ProtoTCP,
		}
		if n := owners(ranges, key.FastHash()); n != 1 {
			t.Fatalf("key %v hash %#x owned by %d ranges", key, key.FastHash(), n)
		}
	}
	// Boundary hashes, where off-by-one bugs live.
	for _, r := range ranges {
		for _, h := range []uint64{r.Lo, r.Hi} {
			if n := owners(ranges, h); n != 1 {
				t.Fatalf("boundary hash %#x owned by %d ranges", h, n)
			}
		}
	}
}

// FuzzPartitionHashSpace fuzzes the partition invariants over arbitrary
// share vectors and probe hashes: the ranges must always partition the
// space (exactly one owner per hash, no gaps, no overlaps).
func FuzzPartitionHashSpace(f *testing.F) {
	f.Add(1.0, 1.0, 1.0, uint64(0))
	f.Add(0.003, 0.001, 0.002, uint64(1)<<63)
	f.Add(1e-12, 1e12, 5.0, ^uint64(0))
	f.Add(0.5, 1e-300, 0.5, uint64(12345))
	f.Fuzz(func(t *testing.T, a, b, c float64, probe uint64) {
		shares := []float64{a, b, c}
		total := 0.0
		for _, s := range shares {
			if !(s > 0) || math.IsInf(s, 0) {
				t.Skip()
			}
			total += s
		}
		if !(total > 0) || math.IsInf(total, 0) {
			t.Skip()
		}
		ranges := make([]HashRange, len(shares))
		PartitionHashSpace(ranges, shares)
		checkPartition(t, ranges)
		if n := owners(ranges, probe); n != 1 {
			t.Fatalf("hash %#x owned by %d ranges (shares %v)", probe, n, shares)
		}
	})
}
