package packet

import (
	"testing"
	"testing/quick"
)

func sampleTuple() FiveTuple {
	return FiveTuple{
		Src:     AddrFrom4(10, 0, 0, 1),
		Dst:     AddrFrom4(192, 168, 1, 200),
		SrcPort: 443,
		DstPort: 51234,
		Proto:   ProtoTCP,
	}
}

func TestAddrString(t *testing.T) {
	a := AddrFrom4(10, 1, 2, 3)
	if a.String() != "10.1.2.3" {
		t.Fatalf("Addr.String = %q", a.String())
	}
}

func TestFiveTupleString(t *testing.T) {
	got := sampleTuple().String()
	want := "6 10.0.0.1:443->192.168.1.200:51234"
	if got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}

func TestReverse(t *testing.T) {
	tup := sampleTuple()
	rev := tup.Reverse()
	if rev.Src != tup.Dst || rev.Dst != tup.Src || rev.SrcPort != tup.DstPort || rev.DstPort != tup.SrcPort {
		t.Fatalf("Reverse = %+v", rev)
	}
	if rev.Reverse() != tup {
		t.Fatal("double reverse is not identity")
	}
}

func TestFastHashDistinguishesFields(t *testing.T) {
	base := sampleTuple()
	mutants := []FiveTuple{base.Reverse()}
	m := base
	m.SrcPort++
	mutants = append(mutants, m)
	m = base
	m.Proto = ProtoUDP
	mutants = append(mutants, m)
	m = base
	m.Dst++
	mutants = append(mutants, m)
	h := base.FastHash()
	for i, mu := range mutants {
		if mu.FastHash() == h {
			t.Fatalf("mutant %d collides with base", i)
		}
	}
}

func TestSymHashSymmetric(t *testing.T) {
	f := func(src, dst uint32, sp, dp uint16, proto uint8) bool {
		tup := FiveTuple{Src: Addr(src), Dst: Addr(dst), SrcPort: sp, DstPort: dp, Proto: proto}
		return tup.SymHash() == tup.Reverse().SymHash()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSymHashNotConstant(t *testing.T) {
	a := sampleTuple()
	b := a
	b.Dst++
	if a.SymHash() == b.SymHash() {
		t.Fatal("distinct flows collide under SymHash (suspicious)")
	}
}

func TestRecordRoundTrip(t *testing.T) {
	r := Record{
		Key:       sampleTuple(),
		MonitorID: 12,
		Packets:   987654321,
		Bytes:     1234567890123,
		Start:     1000,
		End:       1290,
	}
	wire := r.AppendTo(nil)
	if len(wire) != RecordSize {
		t.Fatalf("wire size = %d", len(wire))
	}
	var got Record
	if err := got.DecodeFromBytes(wire); err != nil {
		t.Fatal(err)
	}
	if got != r {
		t.Fatalf("round trip: %+v != %+v", got, r)
	}
}

func TestRecordRoundTripProperty(t *testing.T) {
	f := func(src, dst uint32, sp, dp uint16, proto uint8, mon uint16, pkts, bytes uint64, start, end uint32) bool {
		r := Record{
			Key:       FiveTuple{Src: Addr(src), Dst: Addr(dst), SrcPort: sp, DstPort: dp, Proto: proto},
			MonitorID: mon,
			Packets:   pkts,
			Bytes:     bytes,
			Start:     start,
			End:       end,
		}
		var got Record
		if err := got.DecodeFromBytes(r.AppendTo(nil)); err != nil {
			return false
		}
		return got == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRecordDecodeErrors(t *testing.T) {
	var r Record
	if err := r.DecodeFromBytes(make([]byte, RecordSize-1)); err != ErrShortBuffer {
		t.Fatalf("short buffer: %v", err)
	}
	wire := (&Record{Key: sampleTuple()}).AppendTo(nil)
	wire[0] = 99
	if err := r.DecodeFromBytes(wire); err != ErrBadVersion {
		t.Fatalf("bad version: %v", err)
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	h := Header{Count: 17, Seq: 424242, Exporter: 7}
	wire := h.AppendTo(nil)
	if len(wire) != HeaderSize {
		t.Fatalf("wire size = %d", len(wire))
	}
	var got Header
	if err := got.DecodeFromBytes(wire); err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("round trip: %+v != %+v", got, h)
	}
}

func TestHeaderDecodeErrors(t *testing.T) {
	var h Header
	if err := h.DecodeFromBytes(make([]byte, 3)); err != ErrShortBuffer {
		t.Fatalf("short: %v", err)
	}
	bad := make([]byte, HeaderSize)
	if err := h.DecodeFromBytes(bad); err != ErrBadMagic {
		t.Fatalf("magic: %v", err)
	}
	wire := (&Header{Count: 1}).AppendTo(nil)
	wire[2] = 200
	if err := h.DecodeFromBytes(wire); err != ErrBadVersion {
		t.Fatalf("version: %v", err)
	}
}

func TestAppendToReusesCapacity(t *testing.T) {
	r := Record{Key: sampleTuple()}
	buf := make([]byte, 0, 4*RecordSize)
	out := r.AppendTo(buf)
	if &out[0] != &buf[:1][0] {
		t.Fatal("AppendTo reallocated despite spare capacity")
	}
}

func BenchmarkRecordAppend(b *testing.B) {
	r := Record{Key: sampleTuple(), Packets: 100, Bytes: 15000, Start: 1, End: 2}
	buf := make([]byte, 0, RecordSize)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = r.AppendTo(buf[:0])
	}
}

func BenchmarkRecordDecode(b *testing.B) {
	wire := (&Record{Key: sampleTuple(), Packets: 100}).AppendTo(nil)
	var r Record
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := r.DecodeFromBytes(wire); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFastHash(b *testing.B) {
	tup := sampleTuple()
	for i := 0; i < b.N; i++ {
		_ = tup.FastHash()
	}
}
