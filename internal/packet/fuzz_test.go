package packet

import (
	"bytes"
	"testing"
)

// FuzzRecordDecode: decoding arbitrary bytes must never panic, and any
// successfully decoded record must re-encode to the same bytes
// (canonical round trip).
func FuzzRecordDecode(f *testing.F) {
	f.Add((&Record{Key: FiveTuple{Src: 1, Dst: 2, SrcPort: 3, DstPort: 4, Proto: 6}, Packets: 7}).AppendTo(nil))
	f.Add(make([]byte, RecordSize))
	f.Add([]byte{1})
	f.Fuzz(func(t *testing.T, data []byte) {
		var r Record
		if err := r.DecodeFromBytes(data); err != nil {
			return
		}
		out := r.AppendTo(nil)
		if !bytes.Equal(out, data[:RecordSize]) {
			t.Fatalf("re-encode mismatch: %x vs %x", out, data[:RecordSize])
		}
	})
}

// FuzzHeaderDecode mirrors FuzzRecordDecode for datagram headers.
func FuzzHeaderDecode(f *testing.F) {
	f.Add((&Header{Count: 3, Seq: 9, Exporter: 1}).AppendTo(nil))
	f.Add(make([]byte, HeaderSize))
	f.Fuzz(func(t *testing.T, data []byte) {
		var h Header
		if err := h.DecodeFromBytes(data); err != nil {
			return
		}
		out := h.AppendTo(nil)
		// Reserved bytes are not carried by the struct; compare the
		// meaningful prefix only.
		if !bytes.Equal(out[:12], data[:12]) {
			t.Fatalf("re-encode mismatch: %x vs %x", out[:12], data[:12])
		}
	})
}
