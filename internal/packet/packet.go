// Package packet provides the flow-level primitives the NetFlow
// substrate is built on: IPv4 endpoints, the classic 5-tuple flow key
// with a fast non-cryptographic hash, and a compact fixed-size binary
// flow-record codec with allocation-free encode and decode (the
// DecodingLayer idiom: decode into preallocated structs, never allocate
// on the hot path).
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Addr is an IPv4 address in host byte order.
type Addr uint32

// AddrFrom4 builds an Addr from four octets a.b.c.d.
func AddrFrom4(a, b, c, d byte) Addr {
	return Addr(a)<<24 | Addr(b)<<16 | Addr(c)<<8 | Addr(d)
}

// String renders the address in dotted-quad form.
func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}

// Protocol numbers used by the generators and tests.
const (
	ProtoTCP = 6
	ProtoUDP = 17
)

// FiveTuple is the classic flow key: addresses, ports and protocol.
// It is comparable and usable as a map key.
type FiveTuple struct {
	Src, Dst         Addr
	SrcPort, DstPort uint16
	Proto            uint8
}

// String renders the tuple as "proto src:sport->dst:dport".
func (t FiveTuple) String() string {
	return fmt.Sprintf("%d %s:%d->%s:%d", t.Proto, t.Src, t.SrcPort, t.Dst, t.DstPort)
}

// Reverse returns the tuple of the opposite direction.
func (t FiveTuple) Reverse() FiveTuple {
	return FiveTuple{Src: t.Dst, Dst: t.Src, SrcPort: t.DstPort, DstPort: t.SrcPort, Proto: t.Proto}
}

// Less is a total order on flow keys (src, dst, ports, proto) — the
// tie-breaker deterministic flow-table sweeps sort by, so record
// emission order never inherits Go's randomized map iteration.
func (t FiveTuple) Less(o FiveTuple) bool {
	if t.Src != o.Src {
		return t.Src < o.Src
	}
	if t.Dst != o.Dst {
		return t.Dst < o.Dst
	}
	if t.SrcPort != o.SrcPort {
		return t.SrcPort < o.SrcPort
	}
	if t.DstPort != o.DstPort {
		return t.DstPort < o.DstPort
	}
	return t.Proto < o.Proto
}

// FastHash returns a 64-bit FNV-1a hash of the tuple, suitable for
// sharding flows across workers. It is not symmetric: use SymHash to
// co-locate the two directions of a flow.
//netsamp:noalloc
func (t FiveTuple) FastHash() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(v uint64, bytes int) { //netsamp:alloc-ok non-escaping closure over a stack local; inlined, no heap
		for i := 0; i < bytes; i++ {
			h ^= v & 0xff
			h *= prime
			v >>= 8
		}
	}
	mix(uint64(t.Src), 4)
	mix(uint64(t.Dst), 4)
	mix(uint64(t.SrcPort), 2)
	mix(uint64(t.DstPort), 2)
	mix(uint64(t.Proto), 1)
	return h
}

// SymHash returns a direction-independent hash: the two directions of a
// flow hash identically (the gopacket Flow.FastHash property), so both
// directions land on the same worker.
func (t FiveTuple) SymHash() uint64 {
	a, b := t.FastHash(), t.Reverse().FastHash()
	if a < b {
		return a ^ (b << 1) ^ (b >> 63)
	}
	return b ^ (a << 1) ^ (a >> 63)
}

// RecordSize is the wire size of an encoded Record.
const RecordSize = 40

// recordVersion is the codec version stamped into every record.
const recordVersion = 1

// Record is one exported flow record: the key, the sampled packet and
// byte counts, and the observation window, plus the ID of the exporting
// monitor (link). The wire layout is fixed little-endian, 40 bytes:
//
//	0  version(1) proto(1) monitorID(2)
//	4  src(4) dst(4)
//	12 srcPort(2) dstPort(2)
//	16 packets(8) bytes(8)
//	32 start(4) end(4)    — seconds since the epoch of the trace
type Record struct {
	Key       FiveTuple
	MonitorID uint16
	Packets   uint64
	Bytes     uint64
	Start     uint32
	End       uint32
}

// Errors returned by the codec.
var (
	ErrShortBuffer = errors.New("packet: buffer too short for record")
	ErrBadVersion  = errors.New("packet: unknown record version")
)

// AppendTo appends the wire encoding of r to b and returns the extended
// slice. It performs no allocation when b has spare capacity.
func (r *Record) AppendTo(b []byte) []byte {
	var buf [RecordSize]byte
	buf[0] = recordVersion
	buf[1] = r.Key.Proto
	binary.LittleEndian.PutUint16(buf[2:], r.MonitorID)
	binary.LittleEndian.PutUint32(buf[4:], uint32(r.Key.Src))
	binary.LittleEndian.PutUint32(buf[8:], uint32(r.Key.Dst))
	binary.LittleEndian.PutUint16(buf[12:], r.Key.SrcPort)
	binary.LittleEndian.PutUint16(buf[14:], r.Key.DstPort)
	binary.LittleEndian.PutUint64(buf[16:], r.Packets)
	binary.LittleEndian.PutUint64(buf[24:], r.Bytes)
	binary.LittleEndian.PutUint32(buf[32:], r.Start)
	binary.LittleEndian.PutUint32(buf[36:], r.End)
	return append(b, buf[:]...)
}

// DecodeFromBytes parses one record from the front of b into r without
// allocating. It returns ErrShortBuffer if b holds fewer than RecordSize
// bytes and ErrBadVersion on a version mismatch.
//netsamp:noalloc
func (r *Record) DecodeFromBytes(b []byte) error {
	if len(b) < RecordSize {
		return ErrShortBuffer
	}
	if b[0] != recordVersion {
		return ErrBadVersion
	}
	r.Key.Proto = b[1]
	r.MonitorID = binary.LittleEndian.Uint16(b[2:])
	r.Key.Src = Addr(binary.LittleEndian.Uint32(b[4:]))
	r.Key.Dst = Addr(binary.LittleEndian.Uint32(b[8:]))
	r.Key.SrcPort = binary.LittleEndian.Uint16(b[12:])
	r.Key.DstPort = binary.LittleEndian.Uint16(b[14:])
	r.Packets = binary.LittleEndian.Uint64(b[16:])
	r.Bytes = binary.LittleEndian.Uint64(b[24:])
	r.Start = binary.LittleEndian.Uint32(b[32:])
	r.End = binary.LittleEndian.Uint32(b[36:])
	return nil
}

// HeaderSize is the wire size of a datagram header.
const HeaderSize = 16

// Header prefixes every export datagram: a magic, the codec version, the
// record count, a per-exporter sequence number for loss detection (the
// NetFlow v5 idiom) and the exporter identifier.
//
//	0 magic(2) version(1) count(1)
//	4 seq(4)
//	8 exporter(4)
//	12 reserved(4)
type Header struct {
	Count    uint8
	Seq      uint32
	Exporter uint32
}

// headerMagic identifies netsamp export datagrams.
const headerMagic = 0x4e53 // "NS"

// ErrBadMagic is returned when a datagram does not start with the
// netsamp magic.
var ErrBadMagic = errors.New("packet: bad datagram magic")

// AppendTo appends the wire encoding of h to b.
func (h *Header) AppendTo(b []byte) []byte {
	var buf [HeaderSize]byte
	binary.LittleEndian.PutUint16(buf[0:], headerMagic)
	buf[2] = recordVersion
	buf[3] = h.Count
	binary.LittleEndian.PutUint32(buf[4:], h.Seq)
	binary.LittleEndian.PutUint32(buf[8:], h.Exporter)
	return append(b, buf[:]...)
}

// DecodeFromBytes parses a header from the front of b.
func (h *Header) DecodeFromBytes(b []byte) error {
	if len(b) < HeaderSize {
		return ErrShortBuffer
	}
	if binary.LittleEndian.Uint16(b[0:]) != headerMagic {
		return ErrBadMagic
	}
	if b[2] != recordVersion {
		return ErrBadVersion
	}
	h.Count = b[3]
	h.Seq = binary.LittleEndian.Uint32(b[4:])
	h.Exporter = binary.LittleEndian.Uint32(b[8:])
	return nil
}
