package packet

// HashRange is a contiguous, inclusive interval [Lo, Hi] of the 64-bit
// flow-hash space (FiveTuple.FastHash). Coordinated sampling assigns
// each monitor on a path a range; the ranges of one path partition the
// space exactly — no flow is sampled twice, none falls in a gap.
//
// The canonical empty range is {Lo: 1, Hi: 0} (any Lo > Hi is empty);
// the zero value {0, 0} is the single-point range containing hash 0.
type HashRange struct {
	Lo, Hi uint64
}

// EmptyHashRange is the canonical empty range: it contains no hash.
var EmptyHashRange = HashRange{Lo: 1, Hi: 0}

// Contains reports whether h falls inside the range. Inclusive on both
// ends, so [0, MaxUint64] covers the whole hash space.
//netsamp:noalloc
func (r HashRange) Contains(h uint64) bool {
	return r.Lo <= h && h <= r.Hi
}

// Empty reports whether the range contains no hash.
//netsamp:noalloc
func (r HashRange) Empty() bool { return r.Lo > r.Hi }

// Width returns the number of hashes the range contains, saturating at
// MaxUint64 for the full-space range [0, MaxUint64] (whose true width,
// 2^64, does not fit a uint64).
//netsamp:noalloc
func (r HashRange) Width() uint64 {
	if r.Empty() {
		return 0
	}
	w := r.Hi - r.Lo
	if w == ^uint64(0) {
		return w
	}
	return w + 1
}

// PartitionHashSpace splits the hash space into len(shares) contiguous
// inclusive ranges with widths proportional to the (positive) shares,
// writing them into dst (which must have len(shares) entries). The
// result is an exact partition regardless of floating-point rounding:
// range i+1 starts at one past range i's end, range 0 starts at 0, the
// last range ends at MaxUint64, and every range is non-empty. Shares
// must be positive; the function panics on a non-positive total.
//netsamp:noalloc
func PartitionHashSpace(dst []HashRange, shares []float64) {
	const maxU = ^uint64(0)
	if len(dst) != len(shares) {
		panic("packet: PartitionHashSpace length mismatch")
	}
	m := len(shares)
	if m == 0 {
		return
	}
	total := 0.0
	for _, s := range shares {
		total += s
	}
	if !(total > 0) {
		panic("packet: PartitionHashSpace needs a positive share total")
	}
	lo := uint64(0)
	cum := 0.0
	for i := range shares {
		cum += shares[i]
		var hi uint64
		if i == m-1 {
			// The last range absorbs all residual rounding.
			hi = maxU
		} else {
			f := cum / total
			if f >= 1 {
				hi = maxU
			} else if f <= 0 {
				hi = 0
			} else {
				// Map the cumulative fraction into [0, 2^64) via the
				// half-space to keep the float→uint conversion in range:
				// f < 1 bounds f·2^63 strictly below 2^63, so doubling
				// stays below 2^64.
				hi = uint64(f*(1<<63)) * 2
			}
			// Leave at least one hash for each remaining range so the
			// boundary chain stays strictly monotone.
			if maxSlot := maxU - uint64(m-1-i); hi > maxSlot {
				hi = maxSlot
			}
			// A positive share gets a non-empty range even when rounding
			// collapses its cumulative fraction onto the previous bound.
			if hi < lo {
				hi = lo
			}
		}
		dst[i] = HashRange{Lo: lo, Hi: hi}
		lo = hi + 1
	}
}
