// Package engine runs batches of independent jobs on a bounded worker
// pool. Every paper artifact is such a batch — the Figure 2 θ-sweep, the
// §IV-D randomized convergence study, the dynamic study's per-interval
// re-optimizations — and the related large-scale monitoring literature
// treats the solve-many-instances loop as the scaling bottleneck.
//
// The engine makes three guarantees the ad-hoc sequential loops did not:
//
//   - Determinism: job i's random stream is derived as a pure function
//     of (Options.Seed, i) via rng.SplitSeed, never from shared mutable
//     state, so results are bit-identical regardless of worker count or
//     scheduling order.
//   - Cancellation: Run and Map honour context cancellation and
//     deadlines. Undispatched jobs are skipped, workers drain, and the
//     returned error wraps ctx.Err() (errors.Is-compatible). No
//     goroutines outlive the call.
//   - Isolation: a panicking job is converted into a *PanicError for
//     that job only; the rest of the batch completes and all failures
//     are aggregated with errors.Join in job order.
package engine

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"netsamp/internal/rng"
)

// Options tunes a batch run. The zero value runs on GOMAXPROCS workers
// with master seed 0 (still fully deterministic).
type Options struct {
	// Workers bounds the number of concurrently executing jobs. Values
	// <= 0 select runtime.GOMAXPROCS(0). Workers never affects results,
	// only wall-clock time.
	Workers int
	// Seed is the master seed; job i receives a Source seeded with
	// rng.SplitSeed(Seed, i).
	Seed uint64
	// JobTimeout bounds each job's wall-clock time (zero disables). A
	// job receives a context with this deadline; a job that overruns it
	// fails individually with a *TimeoutError (matchable with
	// errors.Is(err, ErrJobTimeout)) while the rest of the batch
	// completes. Jobs must honour their context for the deadline to
	// interrupt them.
	JobTimeout time.Duration
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// PanicError reports a job that panicked. The batch it belonged to
// completed; only this job's result is missing. Stack is the captured
// goroutine trace with the capture and panic machinery frames trimmed,
// so its first frame is the crash site — a supervised restart logs it
// directly.
type PanicError struct {
	Job   int
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("engine: job %d panicked: %v\n%s", e.Job, e.Value, e.Stack)
}

// trimStack drops the frames a recovered panic always carries on top —
// debug.Stack itself, the engine's deferred recovery closure, and the
// runtime panic dispatch — leaving the panicking function as the first
// frame. The input is returned unchanged if it doesn't look like a
// debug.Stack trace.
func trimStack(stack []byte) []byte {
	lines := bytes.Split(stack, []byte("\n"))
	if len(lines) < 3 {
		return stack
	}
	// lines[0] is the "goroutine N [running]:" header; frames follow as
	// (function, location) line pairs.
	i := 1
	for i+1 < len(lines) {
		fn := lines[i]
		machinery := bytes.HasPrefix(fn, []byte("runtime/debug.Stack")) ||
			bytes.HasPrefix(fn, []byte("panic(")) ||
			bytes.HasPrefix(fn, []byte("runtime.gopanic")) ||
			bytes.HasPrefix(fn, []byte("runtime.panic")) ||
			(bytes.Contains(fn, []byte("engine.runJob")) && bytes.Contains(fn, []byte(".func")))
		if !machinery {
			break
		}
		i += 2
	}
	if i+1 >= len(lines) {
		return stack // trimmed everything: not a trace we understand
	}
	return append(append([]byte{}, lines[0]...), append([]byte("\n"), bytes.Join(lines[i:], []byte("\n"))...)...)
}

// ErrJobTimeout is the sentinel a job's error matches (via errors.Is)
// when the job exceeded Options.JobTimeout. The overrun poisons only
// that job: siblings run to completion.
var ErrJobTimeout = errors.New("engine: job exceeded its timeout")

// TimeoutError reports one job that overran Options.JobTimeout.
type TimeoutError struct {
	Job     int
	Timeout time.Duration
}

func (e *TimeoutError) Error() string {
	return fmt.Sprintf("engine: job %d exceeded its %v timeout", e.Job, e.Timeout)
}

// Is makes errors.Is(err, ErrJobTimeout) match. A per-job timeout
// deliberately does NOT match context.DeadlineExceeded, so callers can
// tell a job overrun apart from the batch's own deadline expiring.
func (e *TimeoutError) Is(target error) bool {
	return target == ErrJobTimeout
}

// Map runs fn for every index in [0, n) and returns the results in
// index order. fn receives the job index and a private deterministic
// rng.Source; it must not touch shared mutable state (each job writes
// only its own result slot).
//
// The error aggregates ctx.Err() (if the batch was cut short) and every
// per-job failure, joined in job order. Results of failed or skipped
// jobs are the zero value of T; results of completed jobs are valid even
// when an error is returned.
func Map[T any](ctx context.Context, opt Options, n int, fn func(ctx context.Context, job int, r *rng.Source) (T, error)) ([]T, error) {
	results := make([]T, n)
	if n == 0 {
		return results, ctx.Err()
	}
	errs := make([]error, n)
	w := opt.workers()
	if w > n {
		w = n
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	wg.Add(w)
	for i := 0; i < w; i++ {
		go func() {
			defer wg.Done()
			for job := range jobs {
				if ctx.Err() != nil {
					errs[job] = ctx.Err()
					continue
				}
				runJob(ctx, opt, job, fn, results, errs)
			}
		}()
	}
	// Feed from this goroutine so Map owns every goroutine it starts:
	// when ctx fires we stop feeding, close the channel, and the workers
	// drain and exit before Map returns.
feed:
	for job := 0; job < n; job++ {
		select {
		case jobs <- job:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()

	var agg []error
	if err := ctx.Err(); err != nil {
		agg = append(agg, err)
	}
	for _, e := range errs {
		if e != nil && !errors.Is(e, ctx.Err()) {
			agg = append(agg, e)
		}
	}
	return results, errors.Join(agg...)
}

// runJob executes one job with panic isolation and, when configured,
// a per-job deadline.
func runJob[T any](ctx context.Context, opt Options, job int, fn func(ctx context.Context, job int, r *rng.Source) (T, error), results []T, errs []error) {
	defer func() {
		if v := recover(); v != nil {
			errs[job] = &PanicError{Job: job, Value: v, Stack: trimStack(debug.Stack())}
		}
	}()
	jctx := ctx
	if opt.JobTimeout > 0 {
		var cancel context.CancelFunc
		jctx, cancel = context.WithTimeout(ctx, opt.JobTimeout)
		defer cancel()
	}
	r := rng.New(rng.SplitSeed(opt.Seed, uint64(job)))
	results[job], errs[job] = fn(jctx, job, r)
	// A deadline that fired on the job's private context — while the
	// batch context is still live — is this job's overrun, not a batch
	// failure: convert it into a TimeoutError so callers can match it
	// and siblings keep running.
	if errs[job] != nil && jctx != ctx &&
		jctx.Err() == context.DeadlineExceeded && ctx.Err() == nil &&
		errors.Is(errs[job], context.DeadlineExceeded) {
		errs[job] = &TimeoutError{Job: job, Timeout: opt.JobTimeout}
	}
}

// Job is one unit of work for Run. The Source is private to the job and
// deterministically seeded from (Options.Seed, job index).
type Job func(ctx context.Context, r *rng.Source) error

// Run executes the jobs on the worker pool and returns their aggregated
// error (see Map for the cancellation and isolation contract). Jobs
// communicate results by writing variables they capture; each job must
// write only its own.
func Run(ctx context.Context, opt Options, jobs ...Job) error {
	_, err := Map(ctx, opt, len(jobs), func(ctx context.Context, i int, r *rng.Source) (struct{}, error) {
		return struct{}{}, jobs[i](ctx, r)
	})
	return err
}
