package engine

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
)

func TestPoolForRunsEveryIndexOnce(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	const n = 1000
	var counts [n]int32
	p.For(n, func(i int) {
		atomic.AddInt32(&counts[i], 1)
	})
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d ran %d times", i, c)
		}
	}
}

func TestPoolForRepeatedLoops(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	var total int64
	for round := 0; round < 50; round++ {
		p.For(64, func(i int) {
			atomic.AddInt64(&total, int64(i))
		})
	}
	want := int64(50 * 64 * 63 / 2)
	if total != want {
		t.Fatalf("total = %d, want %d", total, want)
	}
}

func TestPoolForZeroAndNegative(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	ran := false
	p.For(0, func(int) { ran = true })
	p.For(-3, func(int) { ran = true })
	if ran {
		t.Fatal("fn ran for a non-positive index count")
	}
}

func TestPoolDefaultWorkerCount(t *testing.T) {
	p := NewPool(0)
	defer p.Close()
	if p.Workers() < 1 {
		t.Fatalf("Workers() = %d", p.Workers())
	}
}

func TestPoolPanicPropagates(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var completed int32
	func() {
		defer func() {
			v := recover()
			if v == nil {
				t.Fatal("For did not re-panic")
			}
			var pe *PoolPanicError
			err, ok := v.(error)
			if !ok || !errors.As(err, &pe) {
				t.Fatalf("panic value %T is not a *PoolPanicError", v)
			}
			if !strings.Contains(pe.Error(), "boom at 7") {
				t.Fatalf("panic error misses original value: %q", pe.Error())
			}
		}()
		p.For(64, func(i int) {
			if i == 7 {
				panic("boom at 7")
			}
			atomic.AddInt32(&completed, 1)
		})
	}()
	if completed != 63 {
		t.Fatalf("%d sibling indices completed, want 63 (loop must drain)", completed)
	}
	// The pool must remain usable after a panic, with the panic cleared.
	var ok int32
	p.For(16, func(i int) { atomic.AddInt32(&ok, 1) })
	if ok != 16 {
		t.Fatalf("post-panic loop ran %d of 16 indices", ok)
	}
}

func TestPoolForZeroAllocs(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var sink [256]int64
	fn := func(i int) { sink[i]++ }
	// Warm up (lazily grown runtime structures don't count against the
	// steady state).
	p.For(256, fn)
	allocs := testing.AllocsPerRun(20, func() {
		p.For(256, fn)
	})
	if allocs != 0 {
		t.Fatalf("Pool.For allocates %v per loop, want 0", allocs)
	}
}
