package engine

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"netsamp/internal/rng"
)

// TestMapOrderAndDeterminism verifies the engine's core contract:
// results arrive in job order and are bit-identical for any worker
// count, because job i's stream depends only on (Seed, i).
func TestMapOrderAndDeterminism(t *testing.T) {
	const n = 64
	run := func(workers int) []float64 {
		out, err := Map(context.Background(), Options{Workers: workers, Seed: 42}, n,
			func(_ context.Context, job int, r *rng.Source) (float64, error) {
				// Consume a job-dependent number of variates to shake out
				// any accidental stream sharing.
				v := 0.0
				for i := 0; i <= job%7; i++ {
					v = r.Float64()
				}
				return float64(job) + v, nil
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return out
	}
	seq := run(1)
	for i, v := range seq {
		if v < float64(i) || v >= float64(i)+1 {
			t.Fatalf("result %d out of order: %v", i, v)
		}
	}
	for _, w := range []int{2, 3, 8, 0} {
		if got := run(w); !reflect.DeepEqual(got, seq) {
			t.Fatalf("workers=%d differs from workers=1", w)
		}
	}
}

func TestMapErrorAggregation(t *testing.T) {
	sentinel := errors.New("job failed")
	out, err := Map(context.Background(), Options{Workers: 4}, 10,
		func(_ context.Context, job int, _ *rng.Source) (int, error) {
			if job%3 == 0 {
				return 0, fmt.Errorf("job %d: %w", job, sentinel)
			}
			return job * job, nil
		})
	if !errors.Is(err, sentinel) {
		t.Fatalf("aggregated error lost the cause: %v", err)
	}
	// Failures in jobs 0,3,6,9; the rest must still have completed.
	for _, i := range []int{1, 2, 4, 5, 7, 8} {
		if out[i] != i*i {
			t.Fatalf("job %d result lost: %d", i, out[i])
		}
	}
	// Errors are aggregated in job order.
	msg := err.Error()
	if strings.Index(msg, "job 0") > strings.Index(msg, "job 9") {
		t.Fatalf("errors out of order: %v", msg)
	}
}

func TestRunPanicIsolation(t *testing.T) {
	var done atomic.Int32
	err := Run(context.Background(), Options{Workers: 2},
		func(_ context.Context, _ *rng.Source) error { done.Add(1); return nil },
		func(_ context.Context, _ *rng.Source) error { panic("boom") },
		func(_ context.Context, _ *rng.Source) error { done.Add(1); return nil },
	)
	if err == nil {
		t.Fatal("panic not reported")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error is not a PanicError: %v", err)
	}
	if pe.Job != 1 || pe.Value != "boom" {
		t.Fatalf("wrong panic attribution: job %d value %v", pe.Job, pe.Value)
	}
	if done.Load() != 2 {
		t.Fatalf("sibling jobs did not complete: %d", done.Load())
	}
}

// TestRunCancellation covers the satellite requirement: Run returns
// promptly with ctx.Err() when cancelled mid-batch, and no goroutines
// leak (before/after runtime.NumGoroutine guard with a settle loop).
func TestRunCancellation(t *testing.T) {
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	started := make(chan struct{}, 1)
	var jobs []Job
	for i := 0; i < 32; i++ {
		jobs = append(jobs, func(ctx context.Context, _ *rng.Source) error {
			select {
			case started <- struct{}{}:
			default:
			}
			<-ctx.Done() // block until cancelled
			return ctx.Err()
		})
	}
	errCh := make(chan error, 1)
	go func() { errCh <- Run(ctx, Options{Workers: 4}, jobs...) }()
	<-started
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("error does not wrap ctx.Err(): %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return promptly after cancellation")
	}

	// Goroutine leak guard: the pool and feeder must be gone. Allow the
	// runtime a moment to reap exiting goroutines.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before+1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: before %d, after %d", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestMapDeadline verifies deadline contexts behave like cancellation.
func TestMapDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := Map(ctx, Options{Workers: 2}, 100,
		func(ctx context.Context, _ int, _ *rng.Source) (int, error) {
			<-ctx.Done()
			return 0, nil
		})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline not surfaced: %v", err)
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(context.Background(), Options{}, 0,
		func(_ context.Context, _ int, _ *rng.Source) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("empty batch: %v %v", out, err)
	}
}

func TestSplitSeedIsPure(t *testing.T) {
	a := rng.SplitSeed(7, 3)
	b := rng.SplitSeed(7, 3)
	if a != b {
		t.Fatal("SplitSeed not deterministic")
	}
	seen := map[uint64]bool{}
	for i := uint64(0); i < 1000; i++ {
		s := rng.SplitSeed(7, i)
		if seen[s] {
			t.Fatalf("seed collision at index %d", i)
		}
		seen[s] = true
	}
}
