package engine

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"netsamp/internal/rng"
)

// TestMapOrderAndDeterminism verifies the engine's core contract:
// results arrive in job order and are bit-identical for any worker
// count, because job i's stream depends only on (Seed, i).
func TestMapOrderAndDeterminism(t *testing.T) {
	const n = 64
	run := func(workers int) []float64 {
		out, err := Map(context.Background(), Options{Workers: workers, Seed: 42}, n,
			func(_ context.Context, job int, r *rng.Source) (float64, error) {
				// Consume a job-dependent number of variates to shake out
				// any accidental stream sharing.
				v := 0.0
				for i := 0; i <= job%7; i++ {
					v = r.Float64()
				}
				return float64(job) + v, nil
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return out
	}
	seq := run(1)
	for i, v := range seq {
		if v < float64(i) || v >= float64(i)+1 {
			t.Fatalf("result %d out of order: %v", i, v)
		}
	}
	for _, w := range []int{2, 3, 8, 0} {
		if got := run(w); !reflect.DeepEqual(got, seq) {
			t.Fatalf("workers=%d differs from workers=1", w)
		}
	}
}

func TestMapErrorAggregation(t *testing.T) {
	sentinel := errors.New("job failed")
	out, err := Map(context.Background(), Options{Workers: 4}, 10,
		func(_ context.Context, job int, _ *rng.Source) (int, error) {
			if job%3 == 0 {
				return 0, fmt.Errorf("job %d: %w", job, sentinel)
			}
			return job * job, nil
		})
	if !errors.Is(err, sentinel) {
		t.Fatalf("aggregated error lost the cause: %v", err)
	}
	// Failures in jobs 0,3,6,9; the rest must still have completed.
	for _, i := range []int{1, 2, 4, 5, 7, 8} {
		if out[i] != i*i {
			t.Fatalf("job %d result lost: %d", i, out[i])
		}
	}
	// Errors are aggregated in job order.
	msg := err.Error()
	if strings.Index(msg, "job 0") > strings.Index(msg, "job 9") {
		t.Fatalf("errors out of order: %v", msg)
	}
}

func TestRunPanicIsolation(t *testing.T) {
	var done atomic.Int32
	err := Run(context.Background(), Options{Workers: 2},
		func(_ context.Context, _ *rng.Source) error { done.Add(1); return nil },
		func(_ context.Context, _ *rng.Source) error { panic("boom") },
		func(_ context.Context, _ *rng.Source) error { done.Add(1); return nil },
	)
	if err == nil {
		t.Fatal("panic not reported")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error is not a PanicError: %v", err)
	}
	if pe.Job != 1 || pe.Value != "boom" {
		t.Fatalf("wrong panic attribution: job %d value %v", pe.Job, pe.Value)
	}
	if done.Load() != 2 {
		t.Fatalf("sibling jobs did not complete: %d", done.Load())
	}
}

// crashSite panics from a named function so the stack-trace test can
// assert the crash site survives trimming.
func crashSite() { panic("kaboom") }

// TestPanicStackTrace: the PanicError carries the goroutine stack with
// the capture/panic machinery trimmed, so the first frame names the
// function that actually panicked — the line a supervised restart logs.
func TestPanicStackTrace(t *testing.T) {
	err := Run(context.Background(), Options{Workers: 1},
		func(_ context.Context, _ *rng.Source) error { crashSite(); return nil },
	)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error is not a PanicError: %v", err)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("no stack captured")
	}
	stack := string(pe.Stack)
	if !strings.Contains(stack, "crashSite") {
		t.Fatalf("crash site missing from stack:\n%s", stack)
	}
	// The machinery frames above the crash site are trimmed: the first
	// frame line (after the goroutine header) is the panicking function.
	lines := strings.Split(stack, "\n")
	if len(lines) < 2 {
		t.Fatalf("stack too short:\n%s", stack)
	}
	if strings.Contains(lines[1], "debug.Stack") || strings.HasPrefix(lines[1], "panic(") {
		t.Fatalf("machinery frame not trimmed: %q", lines[1])
	}
	if !strings.Contains(lines[1], "crashSite") {
		t.Fatalf("first frame is %q, want the crash site", lines[1])
	}
	if !strings.Contains(pe.Error(), "crashSite") {
		t.Fatal("Error() does not include the stack")
	}
}

// TestRunCancellation covers the satellite requirement: Run returns
// promptly with ctx.Err() when cancelled mid-batch, and no goroutines
// leak (before/after runtime.NumGoroutine guard with a settle loop).
func TestRunCancellation(t *testing.T) {
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	started := make(chan struct{}, 1)
	var jobs []Job
	for i := 0; i < 32; i++ {
		jobs = append(jobs, func(ctx context.Context, _ *rng.Source) error {
			select {
			case started <- struct{}{}:
			default:
			}
			<-ctx.Done() // block until cancelled
			return ctx.Err()
		})
	}
	errCh := make(chan error, 1)
	go func() { errCh <- Run(ctx, Options{Workers: 4}, jobs...) }()
	<-started
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("error does not wrap ctx.Err(): %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return promptly after cancellation")
	}

	// Goroutine leak guard: the pool and feeder must be gone. Allow the
	// runtime a moment to reap exiting goroutines.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before+1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: before %d, after %d", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestJobTimeoutIsolation covers the per-job timeout contract: an
// overrun job fails alone with an ErrJobTimeout-matchable error while
// its siblings complete normally.
func TestJobTimeoutIsolation(t *testing.T) {
	out, err := Map(context.Background(), Options{Workers: 4, JobTimeout: 30 * time.Millisecond}, 8,
		func(ctx context.Context, job int, _ *rng.Source) (int, error) {
			if job == 3 {
				<-ctx.Done() // simulate a job that only stops at its deadline
				return 0, ctx.Err()
			}
			return job * 10, nil
		})
	if err == nil {
		t.Fatal("timeout not reported")
	}
	if !errors.Is(err, ErrJobTimeout) {
		t.Fatalf("aggregated error does not match ErrJobTimeout: %v", err)
	}
	// The job timeout must not masquerade as a batch deadline.
	if errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("job timeout leaked as DeadlineExceeded: %v", err)
	}
	var te *TimeoutError
	if !errors.As(err, &te) || te.Job != 3 {
		t.Fatalf("wrong timeout attribution: %v", err)
	}
	for _, i := range []int{0, 1, 2, 4, 5, 6, 7} {
		if out[i] != i*10 {
			t.Fatalf("sibling job %d result lost: %d", i, out[i])
		}
	}
}

// TestJobTimeoutKeepsJobErrors: a job that fails on its own after the
// deadline with an unrelated error keeps that error — only deadline
// errors are converted.
func TestJobTimeoutKeepsJobErrors(t *testing.T) {
	sentinel := errors.New("domain failure")
	_, err := Map(context.Background(), Options{Workers: 2, JobTimeout: time.Hour}, 2,
		func(_ context.Context, job int, _ *rng.Source) (int, error) {
			if job == 0 {
				return 0, sentinel
			}
			return 1, nil
		})
	if !errors.Is(err, sentinel) {
		t.Fatalf("job error lost: %v", err)
	}
	if errors.Is(err, ErrJobTimeout) {
		t.Fatalf("non-timeout failure reported as timeout: %v", err)
	}
}

// TestJobTimeoutNoLeak mirrors the cancellation leak test: a batch
// whose jobs all overrun their per-job deadline must drain completely
// and leave no goroutines behind.
func TestJobTimeoutNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()

	err := Run(context.Background(), Options{Workers: 4, JobTimeout: 10 * time.Millisecond},
		func(ctx context.Context, _ *rng.Source) error { <-ctx.Done(); return ctx.Err() },
		func(ctx context.Context, _ *rng.Source) error { <-ctx.Done(); return ctx.Err() },
		func(ctx context.Context, _ *rng.Source) error { <-ctx.Done(); return ctx.Err() },
		func(ctx context.Context, _ *rng.Source) error { <-ctx.Done(); return ctx.Err() },
		func(ctx context.Context, _ *rng.Source) error { <-ctx.Done(); return ctx.Err() },
		func(ctx context.Context, _ *rng.Source) error { <-ctx.Done(); return ctx.Err() },
	)
	if !errors.Is(err, ErrJobTimeout) {
		t.Fatalf("want ErrJobTimeout, got %v", err)
	}
	// Every job failed individually; all six must be reported.
	for i := 0; i < 6; i++ {
		if !strings.Contains(err.Error(), fmt.Sprintf("job %d", i)) {
			t.Fatalf("job %d overrun not reported: %v", i, err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before+1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: before %d, after %d", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestJobTimeoutUnderParentCancellation: when the batch context itself
// is cancelled, jobs report the batch cancellation, not a job timeout.
func TestJobTimeoutUnderParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	var once sync.Once
	errCh := make(chan error, 1)
	go func() {
		errCh <- Run(ctx, Options{Workers: 2, JobTimeout: time.Hour},
			func(ctx context.Context, _ *rng.Source) error {
				once.Do(func() { close(started) })
				<-ctx.Done()
				return ctx.Err()
			})
	}()
	<-started
	cancel()
	err := <-errCh
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if errors.Is(err, ErrJobTimeout) {
		t.Fatalf("cancellation misreported as job timeout: %v", err)
	}
}

// TestMapDeadline verifies deadline contexts behave like cancellation.
func TestMapDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := Map(ctx, Options{Workers: 2}, 100,
		func(ctx context.Context, _ int, _ *rng.Source) (int, error) {
			<-ctx.Done()
			return 0, nil
		})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline not surfaced: %v", err)
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(context.Background(), Options{}, 0,
		func(_ context.Context, _ int, _ *rng.Source) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("empty batch: %v %v", out, err)
	}
}

func TestSplitSeedIsPure(t *testing.T) {
	a := rng.SplitSeed(7, 3)
	b := rng.SplitSeed(7, 3)
	if a != b {
		t.Fatal("SplitSeed not deterministic")
	}
	seen := map[uint64]bool{}
	for i := uint64(0); i < 1000; i++ {
		s := rng.SplitSeed(7, i)
		if seen[s] {
			t.Fatalf("seed collision at index %d", i)
		}
		seen[s] = true
	}
}
