package engine

import (
	"runtime"
	"runtime/debug"
	"sync"
)

// Pool is a persistent worker pool for repeated data-parallel loops over
// index ranges. Unlike Map/Run — which spin up goroutines, result slices
// and an error slice per batch — a Pool is built once and then dispatches
// loops with zero heap allocations, which is what the solver's sharded
// gradient/Hessian kernels need to keep SolveInto at 0 allocs/op.
//
// The contract is deliberately narrower than Map's:
//
//   - For(n, fn) runs fn(i) for every i in [0, n) across the workers and
//     returns when all calls finished. Calls may run in any order and
//     concurrently; fn must write only state owned by index i.
//   - A Pool carries no RNG plumbing: the solver kernels are
//     deterministic pure functions of their inputs. Determinism across
//     worker counts is the *caller's* job (fixed chunking + ordered
//     reduction); the pool only promises that every index runs exactly
//     once.
//   - For is not reentrant: one loop at a time per Pool. Concurrent For
//     calls on the same Pool are a caller bug.
//   - A panic in fn is captured and re-raised from For after the loop
//     has drained, so sibling indices still complete and the pool stays
//     usable.
type Pool struct {
	workers int
	jobs    chan int
	wg      sync.WaitGroup
	done    sync.WaitGroup
	fn      func(int)

	mu       sync.Mutex
	panicVal any
	stack    []byte
}

// NewPool starts a pool with the given number of workers; values <= 0
// select runtime.GOMAXPROCS(0). Close releases the workers.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		workers: workers,
		// Buffer the job channel generously so For's feed loop rarely
		// blocks: chunk counts are small (the solver caps them at 64).
		jobs: make(chan int, 256),
	}
	p.done.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

// Workers reports the pool size.
func (p *Pool) Workers() int { return p.workers }

func (p *Pool) worker() {
	defer p.done.Done()
	for idx := range p.jobs {
		p.call(idx)
		p.wg.Done()
	}
}

// call runs one index with panic capture. The first panic wins; it is
// re-raised from For once the loop has drained.
func (p *Pool) call(idx int) {
	defer func() {
		if v := recover(); v != nil {
			p.mu.Lock()
			if p.panicVal == nil {
				p.panicVal = v
				p.stack = debug.Stack()
			}
			p.mu.Unlock()
		}
	}()
	p.fn(idx)
}

// For runs fn(i) for every i in [0, n) on the pool and waits for all of
// them. The function value is published to the workers by the channel
// sends (send happens-before receive), so storing it in a plain field is
// race-free. Dispatch allocates nothing: the indices travel over a
// buffered chan int and completion is a sync.WaitGroup.
//
//netsamp:noalloc
func (p *Pool) For(n int, fn func(int)) {
	if n <= 0 {
		return
	}
	p.fn = fn
	p.wg.Add(n)
	for i := 0; i < n; i++ {
		p.jobs <- i //netsamp:ctx-ok workers drain jobs until Close; receiver lifetime equals pool lifetime
	}
	p.wg.Wait()
	p.fn = nil
	if p.panicVal != nil {
		p.rethrow() //netsamp:allocflow-ok deliberate: wrapping a worker panic allocates only after the solve is dead
	}
}

// rethrow re-raises a captured loop panic as a *PoolPanicError. Kept out
// of For so the wrapper's allocation stays off the annotated hot path —
// by the time we are here the solve is dead anyway.
func (p *Pool) rethrow() {
	v, stack := p.panicVal, p.stack
	p.panicVal, p.stack = nil, nil
	panic(&PoolPanicError{Value: v, Stack: trimStack(stack)})
}

// Close shuts the workers down and waits for them to exit. The pool must
// be idle (no For in flight). Close is idempotent only in the sense that
// it must be called exactly once; a second Close panics like any double
// channel close.
func (p *Pool) Close() {
	close(p.jobs)
	p.done.Wait()
}

// PoolPanicError reports a panic raised by a Pool.For body. It is thrown
// (re-panicked), not returned: For has no error path, matching the
// solver kernels it hosts, which are panic-free by construction — a
// panic here is a bug, and the original value and trimmed stack identify
// it.
type PoolPanicError struct {
	Value any
	Stack []byte
}

func (e *PoolPanicError) Error() string {
	return "engine: pool loop panicked: " + sprintAny(e.Value) + "\n" + string(e.Stack)
}

func sprintAny(v any) string {
	switch t := v.(type) {
	case string:
		return t
	case error:
		return t.Error()
	default:
		return "non-string panic value"
	}
}
