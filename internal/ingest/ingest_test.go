package ingest

import (
	"encoding/binary"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"netsamp/internal/netflow"
	"netsamp/internal/packet"
)

// testRho/testClassifier: 3 OD pairs keyed by destination port.
var testRho = []float64{0.1, 0.5, 1.0}

func testClassifier(key packet.FiveTuple) (int, bool) {
	return int(key.DstPort) % len(testRho), true
}

func testConfig(shards int) Config {
	return Config{
		Shards:          shards,
		IntervalSeconds: 300,
		Rho:             testRho,
		Classifier:      testClassifier,
	}
}

// dgram builds one valid export datagram: count records from exporter
// exp at flow sequence seq, with record contents derived
// deterministically from (exp, seq, i).
func dgram(exp, seq uint32, count int, start uint32) []byte {
	h := packet.Header{Count: uint8(count), Seq: seq, Exporter: exp}
	b := h.AppendTo(nil)
	for i := 0; i < count; i++ {
		rec := packet.Record{
			Key: packet.FiveTuple{
				Src: packet.Addr(exp), Dst: packet.Addr(seq + uint32(i)),
				SrcPort: uint16(seq), DstPort: uint16(i), Proto: packet.ProtoTCP,
			},
			MonitorID: uint16(exp),
			Packets:   uint64(1 + i),
			Bytes:     uint64(100 * (i + 1)),
			Start:     start,
			End:       start + 1,
		}
		b = rec.AppendTo(b)
	}
	return b
}

func TestRingSPSC(t *testing.T) {
	r := newRing(3) // rounds up to 4
	if r.capacity() != 4 {
		t.Fatalf("capacity %d, want 4", r.capacity())
	}
	payload := func(i byte) []byte { return []byte{i, i + 1} }
	for i := byte(0); i < 4; i++ {
		if !r.push(payload(i), int64(i)) {
			t.Fatalf("push %d rejected before full", i)
		}
	}
	if r.push(payload(9), 9) {
		t.Fatal("push accepted on a full ring")
	}
	for i := byte(0); i < 4; i++ {
		sl, ok := r.peek()
		if !ok {
			t.Fatalf("peek %d: empty", i)
		}
		if sl.n != 2 || sl.buf[0] != i || sl.stamp != int64(i) {
			t.Fatalf("slot %d: n=%d buf[0]=%d stamp=%d", i, sl.n, sl.buf[0], sl.stamp)
		}
		r.advance()
	}
	if _, ok := r.peek(); ok {
		t.Fatal("peek on empty ring succeeded")
	}

	// Concurrent SPSC pass under -race: one producer, one consumer,
	// every payload observed exactly once in order.
	const total = 10000
	r2 := newRing(64)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var b [4]byte
		for i := uint32(0); i < total; {
			binary.LittleEndian.PutUint32(b[:], i)
			if r2.push(b[:], 0) {
				i++
			}
		}
	}()
	for want := uint32(0); want < total; {
		sl, ok := r2.peek()
		if !ok {
			continue
		}
		got := binary.LittleEndian.Uint32(sl.buf[:sl.n])
		if got != want {
			t.Fatalf("consumed %d, want %d", got, want)
		}
		r2.advance()
		want++
	}
	wg.Wait()
}

func TestStepModePipelineAndInvariant(t *testing.T) {
	c, err := New(testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	// Three exporters, interleaved, with a sequence gap (loss) and a
	// duplicate.
	seqs := map[uint32]uint32{}
	send := func(exp uint32, count int) []byte {
		b := dgram(exp, seqs[exp], count, 1000)
		seqs[exp] += uint32(count)
		return b
	}
	for i := 0; i < 50; i++ {
		exp := uint32(1 + i%3)
		b := send(exp, 1+i%8)
		if !c.Inject(b) {
			t.Fatalf("inject %d rejected", i)
		}
	}
	seqs[2] += 40 // 40 records lost on the wire
	lossy := send(2, 5)
	c.Inject(lossy)
	c.Inject(lossy) // duplicate datagram
	if err := c.Snapshot().CheckInvariant(); err != nil {
		t.Fatal(err)
	}
	c.ProcessAllAvailable()
	if err := c.MergeNow(); err != nil {
		t.Fatal(err)
	}
	v := c.Snapshot()
	if err := v.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
	if v.Queued != 0 {
		t.Fatalf("queued %d after full drain", v.Queued)
	}
	if v.LostRecords != 40 {
		t.Fatalf("lost %d, want 40", v.LostRecords)
	}
	if v.Duplicates != 1 {
		t.Fatalf("duplicates %d, want 1", v.Duplicates)
	}
	if v.Records != v.Delivered {
		t.Fatalf("no drops expected: received %d != delivered %d", v.Records, v.Delivered)
	}
	if len(v.Exporters) != 3 {
		t.Fatalf("%d exporters, want 3", len(v.Exporters))
	}
	for i := 1; i < len(v.Exporters); i++ {
		if v.Exporters[i-1].ID >= v.Exporters[i].ID {
			t.Fatal("exporter view not ascending by ID")
		}
	}
	if got := c.Estimates(); len(got) == 0 {
		t.Fatal("no estimates after merge")
	}
	// The wire loss must surface as variance inflation, not silence.
	if v.LossFraction <= 0 {
		t.Fatalf("loss fraction %v, want > 0", v.LossFraction)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestOverloadDropNewestAccounting(t *testing.T) {
	cfg := testConfig(1)
	cfg.RingSize = 8
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Nobody consumes: the 9th datagram onward must drop (ring 8).
	var seq uint32
	queued, dropped := 0, 0
	for i := 0; i < 30; i++ {
		b := dgram(7, seq, 4, 600)
		seq += 4
		if c.Inject(b) {
			queued++
		} else {
			dropped++
		}
	}
	if queued != 8 || dropped != 22 {
		t.Fatalf("queued %d dropped %d, want 8/22", queued, dropped)
	}
	v := c.Snapshot()
	if err := v.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
	if v.Dropped.Overload != 22*4 {
		t.Fatalf("overload drops %d, want %d", v.Dropped.Overload, 22*4)
	}
	if v.Queued != 8*4 {
		t.Fatalf("queued records %d, want %d", v.Queued, 8*4)
	}
	// Close drains nothing to the estimator: the queued records become
	// shutdown drops and the books balance exactly.
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	v = c.Snapshot()
	if err := v.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
	if v.Queued != 0 {
		t.Fatalf("queued %d after Close", v.Queued)
	}
	if v.Dropped.Shutdown != 8*4 {
		t.Fatalf("shutdown drops %d, want %d", v.Dropped.Shutdown, 8*4)
	}
	if v.Records != v.Delivered+v.Dropped.Total() {
		t.Fatalf("final accounting: received %d != delivered %d + dropped %d",
			v.Records, v.Delivered, v.Dropped.Total())
	}
	// All loss is in counters, and the estimator was told: the loss
	// fraction covers every dropped record.
	if v.LossFraction == 0 {
		t.Fatal("drops did not move the loss fraction")
	}
}

func TestMalformedRecordsDropBucket(t *testing.T) {
	c, err := New(testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	good := dgram(3, 0, 4, 300)
	bad := dgram(3, 4, 4, 300)
	bad[packet.HeaderSize] = 0xff // corrupt the first record's version byte
	c.Inject(good)
	c.Inject(bad)
	// Header-level garbage is rejected before attribution.
	if c.Inject([]byte{1, 2, 3}) {
		t.Fatal("truncated datagram accepted")
	}
	c.ProcessAllAvailable()
	v := c.Snapshot()
	if err := v.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
	if v.Delivered != 4 || v.Dropped.Malformed != 4 {
		t.Fatalf("delivered %d malformed %d, want 4/4", v.Delivered, v.Dropped.Malformed)
	}
	if v.MalformedDatagrams != 1 {
		t.Fatalf("malformed datagrams %d, want 1", v.MalformedDatagrams)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestMergeBitIdenticalAcrossShardCounts pins the tentpole determinism
// claim: the same input stream through 1, 2 and 4 shards produces
// bit-identical merged estimates and identical per-exporter accounting
// once drained.
func TestMergeBitIdenticalAcrossShardCounts(t *testing.T) {
	stream := make([][]byte, 0, 200)
	seqs := map[uint32]uint32{}
	for i := 0; i < 200; i++ {
		exp := uint32(1 + i%7)
		count := 1 + i%9
		stream = append(stream, dgram(exp, seqs[exp], count, uint32(100+i*7)))
		seqs[exp] += uint32(count)
	}
	type result struct {
		ests []netflow.BinEstimate
		exps []ExporterView
	}
	results := map[int]result{}
	for _, shards := range []int{1, 2, 4} {
		c, err := New(testConfig(shards))
		if err != nil {
			t.Fatal(err)
		}
		for i, b := range stream {
			if !c.Inject(b) {
				t.Fatalf("shards=%d: inject %d rejected", shards, i)
			}
			// Interleave partial processing so merge timing differs per
			// shard count — the merged totals must not care.
			if i%3 == 0 {
				c.ProcessAvailable(i%shards, 16)
			}
			if i%50 == 0 {
				if err := c.MergeNow(); err != nil {
					t.Fatal(err)
				}
			}
		}
		c.ProcessAllAvailable()
		if err := c.MergeNow(); err != nil {
			t.Fatal(err)
		}
		v := c.Snapshot()
		if err := v.CheckInvariant(); err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		results[shards] = result{ests: c.Estimates(), exps: v.Exporters}
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
	}
	base := results[1]
	for _, shards := range []int{2, 4} {
		r := results[shards]
		if len(r.ests) != len(base.ests) {
			t.Fatalf("shards=%d: %d bins, want %d", shards, len(r.ests), len(base.ests))
		}
		for i := range base.ests {
			a, b := base.ests[i], r.ests[i]
			if a.Start != b.Start {
				t.Fatalf("shards=%d bin %d: start %d != %d", shards, i, b.Start, a.Start)
			}
			for k := range a.Sampled {
				if a.Sampled[k] != b.Sampled[k] || a.Estimate[k] != b.Estimate[k] || a.RelStdErr[k] != b.RelStdErr[k] {
					t.Fatalf("shards=%d bin %d od %d: (%d, %v, %v) != (%d, %v, %v)",
						shards, i, k, b.Sampled[k], b.Estimate[k], b.RelStdErr[k], a.Sampled[k], a.Estimate[k], a.RelStdErr[k])
				}
			}
		}
		if len(r.exps) != len(base.exps) {
			t.Fatalf("shards=%d: %d exporters, want %d", shards, len(r.exps), len(base.exps))
		}
		for i := range base.exps {
			a, b := base.exps[i], r.exps[i]
			a.Shard, b.Shard = 0, 0 // placement is allowed to differ
			if a != b {
				t.Fatalf("shards=%d exporter %d: %+v != %+v", shards, a.ID, b, a)
			}
		}
	}
}

// TestLiveOverloadGracefulDegradation drives a live 2-shard collector
// at several times its throttled capacity over UDP: it must stay up,
// drop (not block, not grow), keep the books exact, and report the
// loss to the estimator.
func TestLiveOverloadGracefulDegradation(t *testing.T) {
	cfg := testConfig(2)
	cfg.RingSize = 64
	cfg.CapacityPerShard = 20000 // records/sec — tiny, so overload is certain
	cfg.MergeEvery = 20 * time.Millisecond
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	exp, err := netflow.NewExporter(c.Addr(), 11)
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]packet.Record, netflow.MaxRecordsPerDatagram)
	for i := range recs {
		recs[i] = packet.Record{
			Key:     packet.FiveTuple{Src: 1, Dst: 2, DstPort: uint16(i), Proto: packet.ProtoTCP},
			Packets: 1, Start: 500,
		}
	}
	deadline := time.Now().Add(400 * time.Millisecond)
	for time.Now().Before(deadline) {
		if err := exp.Export(recs); err != nil {
			t.Fatal(err)
		}
	}
	if err := exp.Close(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	v := c.Snapshot()
	if err := v.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
	if v.Queued != 0 {
		t.Fatalf("queued %d after Close", v.Queued)
	}
	if v.Records != v.Delivered+v.Dropped.Total() {
		t.Fatalf("final accounting: received %d != delivered %d + dropped %d",
			v.Records, v.Delivered, v.Dropped.Total())
	}
	// At many-times capacity the tier must have shed load. (UDP may
	// also shed into sequence gaps — that is accounted separately and
	// is fine.)
	if v.Dropped.Total() == 0 && v.LostRecords == 0 {
		t.Fatalf("sustained overload produced no drops and no wire loss: %+v", v)
	}
	if v.Dropped.Total() > 0 && v.LossFraction == 0 {
		t.Fatal("drops did not surface in the loss fraction")
	}
}

// TestPoisonedDatagramRestart pins the supervisor integration: a
// classifier that panics on one flow key must cost exactly that
// datagram (Poisoned bucket), the worker restarts with stats intact,
// and everything else is delivered.
func TestPoisonedDatagramRestart(t *testing.T) {
	cfg := testConfig(1)
	cfg.Classifier = func(key packet.FiveTuple) (int, bool) {
		if key.SrcPort == 4242 {
			panic("poisoned flow key")
		}
		return int(key.DstPort) % len(testRho), true
	}
	cfg.RestartBackoff = time.Millisecond
	cfg.MaxRestarts = 3
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("udp", c.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var seq uint32
	send := func(count int, poison bool) {
		b := dgram(5, seq, count, 900)
		if poison {
			// SrcPort sits at offset 12 of the first record.
			binary.LittleEndian.PutUint16(b[packet.HeaderSize+12:], 4242)
		}
		seq += uint32(count)
		if _, err := conn.Write(b); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	send(3, false)
	send(4, true) // the worker panics on this one
	send(5, false)
	waitUntil(t, time.Second, func() bool {
		v := c.Snapshot()
		return v.Delivered == 8 && v.Dropped.Poisoned == 4
	})
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	v := c.Snapshot()
	if err := v.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
	if v.Delivered != 8 || v.Dropped.Poisoned != 4 {
		t.Fatalf("delivered %d poisoned %d, want 8/4: %+v", v.Delivered, v.Dropped.Poisoned, v)
	}
	if v.Shards[0].Restarts == 0 {
		t.Fatal("no supervisor restart recorded")
	}
	if v.Records != 12 {
		t.Fatalf("restart lost accounting state: received %d, want 12", v.Records)
	}
}

// TestSteadyStateZeroAlloc pins the hot path: once exporters and bins
// are warm, inject + decode + classify + account allocates nothing.
func TestSteadyStateZeroAlloc(t *testing.T) {
	c, err := New(testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	b := dgram(9, 0, netflow.MaxRecordsPerDatagram, 1200)
	var seq uint32
	step := func() {
		binary.LittleEndian.PutUint32(b[4:], seq)
		seq += netflow.MaxRecordsPerDatagram
		if !c.Inject(b) {
			t.Fatal("inject rejected")
		}
		if c.ProcessAvailable(0, 1<<20) != netflow.MaxRecordsPerDatagram {
			t.Fatal("short processing")
		}
	}
	for i := 0; i < 32; i++ {
		step() // warm: exporter entry, interval bin, decode scratch
	}
	if allocs := testing.AllocsPerRun(1000, step); allocs != 0 {
		t.Fatalf("steady-state ingest allocates %.1f allocs/op, want 0", allocs)
	}
}

// waitUntil polls cond until it holds or the deadline passes (then the
// caller's final assertions report the details).
func waitUntil(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestWatchdogDetectsWorkerWedgedHoldingLock pins the watchdog's
// lock-free contract: a worker wedged inside its critical section —
// holding s.mu — must still be flagged Stalled. The wedge is a
// classifier that blocks, which runs under the shard lock inside
// accumulate; the watchdog reads the shard's atomic progress counter
// and the ring cursors instead of taking s.mu, so it keeps ticking. An
// implementation that locked per shard would deadlock against exactly
// this wedge and never report it.
func TestWatchdogDetectsWorkerWedgedHoldingLock(t *testing.T) {
	var logMu sync.Mutex
	var logs []string
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	cfg := testConfig(1)
	cfg.WatchdogEvery = 5 * time.Millisecond
	cfg.Logf = func(format string, args ...any) {
		logMu.Lock()
		logs = append(logs, fmt.Sprintf(format, args...))
		logMu.Unlock()
	}
	cfg.Classifier = func(key packet.FiveTuple) (int, bool) {
		if key.SrcPort == 9999 {
			once.Do(func() { close(entered) })
			<-release
		}
		return 0, true
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	exp, err := netflow.NewExporter(c.Addr(), 7)
	if err != nil {
		t.Fatal(err)
	}
	wedgeRecs := []packet.Record{{
		Key:     packet.FiveTuple{Src: 1, Dst: 2, SrcPort: 9999, Proto: packet.ProtoTCP},
		Packets: 1, Start: 500, End: 501,
	}}
	// Resend until the classifier confirms the wedge is in place (UDP
	// may drop the first datagram on a busy loopback).
	wedged := false
	for range 200 {
		if err := exp.Export(wedgeRecs); err != nil {
			t.Fatal(err)
		}
		select {
		case <-entered:
			wedged = true
		case <-time.After(25 * time.Millisecond):
		}
		if wedged {
			break
		}
	}
	if !wedged {
		t.Fatal("worker never reached the blocking classifier")
	}

	// The worker now sits inside accumulate holding s.mu, its datagram
	// un-advanced in the ring: queued work, zero progress. The
	// watchdog must flag it without touching the lock.
	deadline := time.Now().Add(5 * time.Second)
	for !s0(c).stalled.Load() {
		if time.Now().After(deadline) {
			close(release)
			t.Fatal("watchdog never flagged the wedged shard")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Released: the worker drains, progress resumes, the flag clears.
	close(release)
	deadline = time.Now().Add(5 * time.Second)
	for s0(c).stalled.Load() {
		if time.Now().After(deadline) {
			t.Fatal("watchdog never cleared the stall after recovery")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := exp.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	v := c.Snapshot()
	if err := v.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
	if v.Shards[0].Stalled {
		t.Fatal("stall flag must be clear in the final snapshot")
	}
	logMu.Lock()
	defer logMu.Unlock()
	var sawStall, sawRecover bool
	for _, l := range logs {
		if strings.Contains(l, "stalled") {
			sawStall = true
		}
		if strings.Contains(l, "recovered") {
			sawRecover = true
		}
	}
	if !sawStall || !sawRecover {
		t.Fatalf("expected stall and recovery log lines, got %q", logs)
	}
}

// s0 returns the first shard (test shorthand).
func s0(c *Collector) *shard { return c.shards[0] }
