package ingest

import (
	"fmt"
	"math/bits"
	"time"

	"netsamp/internal/netflow"
)

// DropStats breaks a shard's dropped records down by cause. Every
// record the pump accepted but the estimator never saw is in exactly
// one bucket — loss is always visible in a counter, never silent.
type DropStats struct {
	// Overload counts records rejected because the shard's ring was
	// full (after the Block deadline, under that policy).
	Overload uint64
	// Malformed counts records of accepted datagrams whose record
	// payload then failed to decode (the header and length were valid,
	// so the datagram entered the sequence accounting).
	Malformed uint64
	// Shutdown counts records still queued when Close abandoned them.
	Shutdown uint64
	// Poisoned counts records of datagrams whose processing panicked;
	// the supervisor-restarted worker skips the slot and accounts it
	// here, so one bad datagram cannot crash-loop a shard.
	Poisoned uint64
}

// Total sums the drop buckets.
func (d DropStats) Total() uint64 {
	return d.Overload + d.Malformed + d.Shutdown + d.Poisoned
}

func (d *DropStats) add(o DropStats) {
	d.Overload += o.Overload
	d.Malformed += o.Malformed
	d.Shutdown += o.Shutdown
	d.Poisoned += o.Poisoned
}

// ShardStats is one shard's accounting. At any instant
// Records == Delivered + Dropped.Total() + Queued; after Close,
// Queued is zero and the equality is exact over the whole run.
type ShardStats struct {
	Shard     int
	Datagrams uint64 // datagrams the pump accepted for this shard
	Records   uint64 // records those datagrams carried ("received")
	Delivered uint64 // records decoded and handed to the estimator stage
	Queued    uint64 // records accepted but still in the ring
	Dropped   DropStats
	// LostRecords and Duplicates are flow-sequence accounting (wire or
	// exporter-side loss, upstream of this tier), summed over the
	// shard's exporters. They are disjoint from Dropped.
	LostRecords uint64
	Duplicates  uint64
	// CoarseBatches counts backlog sweeps processed in degraded mode
	// (one lock acquisition for the whole sweep) — the shard coarsened
	// its cadence before dropping anything.
	CoarseBatches uint64
	// Restarts counts supervisor restarts of this shard's worker after
	// a panic; stats survive the restart.
	Restarts uint64
	// Stalled is set by the watchdog: queued work but no consumption
	// progress across consecutive checks. It is tracked lock-free on
	// the shard (the watchdog never takes the shard lock, so a worker
	// wedged holding it is still detected) and folded into Snapshot's
	// copy. GaveUp means the supervisor exhausted MaxRestarts; the
	// pump keeps accounting drops.
	Stalled bool
	GaveUp  bool
}

// ExporterView is one exporter's merged accounting: the ingest-tier
// invariant counters plus the flow-sequence stats from its SeqTracker.
type ExporterView struct {
	ID        uint32
	Shard     int
	Received  uint64
	Delivered uint64
	Queued    uint64
	Dropped   uint64
	Seq       netflow.ExporterStats
}

// View is a consistent-enough snapshot of the whole tier: shards in
// ascending index order, exporters in ascending ID order, totals
// summed over shards. Each shard is snapshotted atomically (under its
// lock); cross-shard skew only moves records between Queued and
// Delivered/Dropped, never out of the invariant.
type View struct {
	Shards    []ShardStats
	Exporters []ExporterView

	Datagrams   uint64
	Records     uint64
	Delivered   uint64
	Queued      uint64
	Dropped     DropStats
	LostRecords uint64
	Duplicates  uint64
	// MalformedDatagrams counts datagrams the pump rejected before
	// attribution (bad magic, truncated, oversized): they never entered
	// Records and are outside the invariant by construction.
	MalformedDatagrams uint64
	// LossFraction is the estimator-facing loss estimate:
	// (lost + dropped) / (received + lost).
	LossFraction float64
	// HandoffP99 is the 99th-percentile pump→worker hand-off latency
	// (log₂-bucketed upper bound; zero when nothing was stamped).
	HandoffP99 time.Duration
}

// CheckInvariant verifies received == delivered + dropped + queued on
// every shard and every exporter. It returns nil when the books
// balance; any non-nil return is a bug in the tier, and the soak and
// fuzz harnesses treat it as fatal.
func (v View) CheckInvariant() error {
	for _, s := range v.Shards {
		if s.Records != s.Delivered+s.Dropped.Total()+s.Queued {
			return fmt.Errorf("ingest: shard %d accounting broken: received %d != delivered %d + dropped %d + queued %d",
				s.Shard, s.Records, s.Delivered, s.Dropped.Total(), s.Queued)
		}
	}
	for _, e := range v.Exporters {
		if e.Received != e.Delivered+e.Dropped+e.Queued {
			return fmt.Errorf("ingest: exporter %d accounting broken: received %d != delivered %d + dropped %d + queued %d",
				e.ID, e.Received, e.Delivered, e.Dropped, e.Queued)
		}
	}
	if v.Records != v.Delivered+v.Dropped.Total()+v.Queued {
		return fmt.Errorf("ingest: total accounting broken: received %d != delivered %d + dropped %d + queued %d",
			v.Records, v.Delivered, v.Dropped.Total(), v.Queued)
	}
	return nil
}

// lossFraction is the estimator-facing loss estimate used by the merge:
// the probability that a record an exporter emitted never reached the
// estimator, combining wire loss (sequence gaps) and this tier's own
// drops. Clamped strictly below 1 so SetTransportLoss always accepts it
// (an all-lost interval then reports near-infinite relative error, not
// an error return).
func lossFraction(lost, dropped, received uint64) float64 {
	total := received + lost
	if total == 0 {
		return 0
	}
	frac := float64(lost+dropped) / float64(total)
	if frac >= 1 {
		frac = 0.999999
	}
	if frac < 0 {
		frac = 0
	}
	return frac
}

// latHist is a log₂-bucketed latency histogram: bucket i holds samples
// whose nanosecond latency has bit length i, i.e. [2^(i-1), 2^i).
// Fixed size, allocation-free add.
type latHist struct {
	buckets [48]uint64
}

func (h *latHist) add(ns int64) {
	if ns < 0 {
		ns = 0
	}
	b := bits.Len64(uint64(ns))
	if b >= len(h.buckets) {
		b = len(h.buckets) - 1
	}
	h.buckets[b]++
}

func (h *latHist) merge(o *latHist) {
	for i := range h.buckets {
		h.buckets[i] += o.buckets[i]
	}
}

// quantile returns an upper bound on the q-quantile (q in (0,1]), or 0
// when the histogram is empty.
func (h *latHist) quantile(q float64) time.Duration {
	var total uint64
	for _, c := range h.buckets {
		total += c
	}
	if total == 0 {
		return 0
	}
	need := uint64(q * float64(total))
	if need < 1 {
		need = 1
	}
	var cum uint64
	for i, c := range h.buckets {
		cum += c
		if cum >= need {
			if i == 0 {
				return 0
			}
			return time.Duration(uint64(1)<<uint(i) - 1)
		}
	}
	return time.Duration(uint64(1)<<uint(len(h.buckets)) - 1)
}
