// Package ingest is the overload-resilient sharded ingest tier: the
// stage between raw export datagrams and the estimator that has to keep
// standing when the input rate exceeds capacity. N collector shards,
// keyed by an exporter-ID hash so one exporter's flow-sequence stream is
// always accounted by one shard, each own a bounded single-producer/
// single-consumer ring of reused datagram buffers. A pump (the UDP read
// loop in live mode, Inject in step mode) validates and accounts each
// datagram, then hands it off lock-free; per-shard workers decode in
// reused buffers (the //netsamp:noalloc discipline), classify records
// into per-OD interval bins, and a periodic merge folds every shard's
// bins into the netflow.Estimator in ascending shard order — integer
// sums, so the merged view is bit-identical at any shard count.
//
// Every queue is bounded and every overflow has an explicit policy:
// DropNewest counts the datagram's records against per-shard and
// per-exporter drop counters; Block waits for ring space up to a
// deadline, then drops. A shard that falls behind first degrades by
// coarsening its batch cadence (one lock acquisition per backlog sweep
// instead of per datagram) before any record is dropped. The accounting
// invariant
//
//	received == delivered + dropped + queued
//
// holds per shard and per exporter at every instant, and with queued = 0
// (exactly) after Close. Drops and flow-sequence losses feed the
// estimator's SetTransportLoss path at merge time, so overload surfaces
// as inflated variance and LowConfidence flags — never as silent
// downward bias.
//
// In live mode each shard worker runs under a daemon.Supervisor: a
// panic (e.g. from a faulty classifier) poisons only the in-flight
// datagram — the restarted worker accounts it as dropped, skips the
// slot, and resumes with all shard stats intact.
package ingest

import (
	"fmt"
	"time"

	"netsamp/internal/netflow"
)

// Policy selects what the pump does when a shard's ring is full.
type Policy int

const (
	// DropNewest rejects the arriving datagram, counting its records in
	// DropStats.Overload (per shard and per exporter). The default: it
	// never stalls the pump, so one slow shard cannot back-pressure the
	// socket and starve the others.
	DropNewest Policy = iota
	// Block makes the pump wait up to Config.BlockDeadline for ring
	// space before dropping. Only meaningful in live mode (a step-mode
	// Inject has no concurrent consumer to wait for and drops
	// immediately).
	Block
)

// String names the policy for logs and flags.
func (p Policy) String() string {
	switch p {
	case DropNewest:
		return "drop-newest"
	case Block:
		return "block"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParsePolicy parses the flag spelling of a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "drop-newest", "drop":
		return DropNewest, nil
	case "block":
		return Block, nil
	default:
		return 0, fmt.Errorf("ingest: unknown overload policy %q (want drop-newest or block)", s)
	}
}

// Config parametrizes a sharded collector.
type Config struct {
	// Shards is the number of collector shards (default 1). Exporters
	// are assigned to shards by an exporter-ID hash, so all sequence
	// accounting for one exporter happens on one shard.
	Shards int
	// RingSize is the per-shard hand-off ring capacity in datagrams,
	// rounded up to a power of two (default 1024). Together with the
	// fixed slot size this bounds the tier's memory exactly.
	RingSize int
	// Policy is the overload policy (default DropNewest).
	Policy Policy
	// BlockDeadline bounds how long a Block-policy pump waits for ring
	// space before dropping (default 1ms).
	BlockDeadline time.Duration
	// CapacityPerShard throttles each live worker to this many records
	// per second (0 = unthrottled). It exists to make overload
	// reproducible: a load test can drive a known multiple of capacity
	// on any hardware.
	CapacityPerShard int
	// IntervalSeconds, Rho and Classifier configure the estimation
	// stage (see netflow.NewEstimator). Leave Rho nil to run the tier
	// as a pure counter (no estimator).
	IntervalSeconds uint32
	Rho             []float64
	Classifier      netflow.ODClassifier
	// MergeEvery is the live merge cadence (default 250ms).
	MergeEvery time.Duration
	// WatchdogEvery is the live stall-check cadence (default 1s). A
	// shard with queued datagrams and no consumption progress for three
	// consecutive checks is flagged Stalled.
	WatchdogEvery time.Duration
	// MaxRestarts bounds consecutive panics of one shard worker before
	// its supervisor gives up (default 5); progress resets the count.
	MaxRestarts int
	// RestartBackoff is the supervisor's initial restart delay
	// (default 10ms).
	RestartBackoff time.Duration
	// Logf, when non-nil, receives restart, stall and give-up lines.
	Logf func(format string, args ...any)
}

func (c *Config) shards() int {
	if c.Shards <= 0 {
		return 1
	}
	return c.Shards
}

func (c *Config) ringSize() int {
	if c.RingSize <= 0 {
		return 1024
	}
	return c.RingSize
}

func (c *Config) blockDeadline() time.Duration {
	if c.BlockDeadline <= 0 {
		return time.Millisecond
	}
	return c.BlockDeadline
}

func (c *Config) mergeEvery() time.Duration {
	if c.MergeEvery <= 0 {
		return 250 * time.Millisecond
	}
	return c.MergeEvery
}

func (c *Config) watchdogEvery() time.Duration {
	if c.WatchdogEvery <= 0 {
		return time.Second
	}
	return c.WatchdogEvery
}

func (c *Config) restartBackoff() time.Duration {
	if c.RestartBackoff <= 0 {
		return 10 * time.Millisecond
	}
	return c.RestartBackoff
}

func (c *Config) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// shardOf assigns an exporter ID to a shard: a Fibonacci-hash spread of
// the ID, stable across runs, so per-exporter sequence state never
// migrates between shards.
func shardOf(exporter uint32, n int) int {
	h := (uint64(exporter) + 1) * 0x9e3779b97f4a7c15
	return int((h ^ h>>32) % uint64(n))
}
