package ingest

import (
	"testing"

	"netsamp/internal/netflow"
	"netsamp/internal/packet"
)

// fuzzShardCounts are the shard counts every fuzz input is replayed
// against; the merged result must be identical across all of them.
var fuzzShardCounts = []int{1, 2, 4}

// fuzzOp decodes the fuzz byte stream into a scenario step. The stream
// drives a mix of normal traffic, wire faults (loss gaps, duplicates,
// reorder-heals, corruption) and forced stalls (processing budgets that
// lag arrivals, including none at all).
type fuzzState struct {
	seqs map[uint32]uint32
	// lastHole remembers the most recent simulated loss per exporter so
	// a later op can "heal" it (reordered late arrival).
	lastHole map[uint32][2]uint32 // exporter → (seq, count)
	lastSent map[uint32][]byte
}

// FuzzIngestInvariants replays one fault-injected scenario against
// collectors with 1, 2 and 4 shards and asserts the tier's two core
// properties at every step and at the end:
//
//  1. received == delivered + dropped + queued per shard and per
//     exporter throughout, and exactly (queued = 0) after Close;
//  2. the merged controller view — estimates and per-exporter
//     accounting — is bit-identical across shard counts.
func FuzzIngestInvariants(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add([]byte{1, 1, 1, 40, 2, 2, 6, 0, 3, 10, 5, 0})
	f.Add([]byte{0, 3, 4, 0, 0, 7, 1, 200, 6, 1, 2, 5, 3, 1, 0, 9})
	f.Add([]byte{4, 5, 0, 255, 1, 9, 0, 0, 2, 3, 0, 1, 6, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		type outcome struct {
			ests []netflow.BinEstimate
			exps []ExporterView
			lost uint64
			dups uint64
		}
		var base *outcome
		for _, shards := range fuzzShardCounts {
			cfg := testConfig(shards)
			c, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			st := &fuzzState{
				seqs:     map[uint32]uint32{},
				lastHole: map[uint32][2]uint32{},
				lastSent: map[uint32][]byte{},
			}
			for i := 0; i+1 < len(data); i += 2 {
				op, arg := data[i], data[i+1]
				st.step(c, op, arg)
				if i%16 == 0 {
					if err := c.Snapshot().CheckInvariant(); err != nil {
						t.Fatalf("shards=%d step %d: %v", shards, i, err)
					}
				}
			}
			c.ProcessAllAvailable()
			if err := c.MergeNow(); err != nil {
				t.Fatal(err)
			}
			v := c.Snapshot()
			if err := v.CheckInvariant(); err != nil {
				t.Fatalf("shards=%d drained: %v", shards, err)
			}
			if v.Queued != 0 {
				t.Fatalf("shards=%d: queued %d after drain", shards, v.Queued)
			}
			if v.Records != v.Delivered+v.Dropped.Total() {
				t.Fatalf("shards=%d: received %d != delivered %d + dropped %d",
					shards, v.Records, v.Delivered, v.Dropped.Total())
			}
			if err := c.Close(); err != nil {
				t.Fatal(err)
			}
			got := &outcome{ests: c.Estimates(), exps: v.Exporters, lost: v.LostRecords, dups: v.Duplicates}
			if base == nil {
				base = got
				continue
			}
			// Merged view must be bit-identical to the 1-shard run.
			if got.lost != base.lost || got.dups != base.dups {
				t.Fatalf("shards=%d: lost/dups %d/%d != %d/%d", shards, got.lost, got.dups, base.lost, base.dups)
			}
			if len(got.ests) != len(base.ests) {
				t.Fatalf("shards=%d: %d bins != %d", shards, len(got.ests), len(base.ests))
			}
			for i := range base.ests {
				a, b := base.ests[i], got.ests[i]
				if a.Start != b.Start {
					t.Fatalf("shards=%d bin %d: start %d != %d", shards, i, b.Start, a.Start)
				}
				for k := range a.Sampled {
					if a.Sampled[k] != b.Sampled[k] || a.Estimate[k] != b.Estimate[k] {
						t.Fatalf("shards=%d bin %d od %d: %d/%v != %d/%v",
							shards, i, k, b.Sampled[k], b.Estimate[k], a.Sampled[k], a.Estimate[k])
					}
				}
			}
			if len(got.exps) != len(base.exps) {
				t.Fatalf("shards=%d: %d exporters != %d", shards, len(got.exps), len(base.exps))
			}
			for i := range base.exps {
				a, b := base.exps[i], got.exps[i]
				a.Shard, b.Shard = 0, 0
				if a != b {
					t.Fatalf("shards=%d exporter %d: %+v != %+v", shards, a.ID, b, a)
				}
			}
		}
	})
}

// step applies one fuzz op to the collector, mirroring the scenario
// bookkeeping so every shard count sees the exact same wire stream.
func (st *fuzzState) step(c *Collector, op, arg byte) {
	exp := uint32(1 + arg%5)
	switch op % 7 {
	case 0: // normal datagram
		count := 1 + int(arg)%8
		b := dgram(exp, st.seqs[exp], count, uint32(60*(arg%10)))
		st.seqs[exp] += uint32(count)
		st.lastSent[exp] = b
		c.Inject(b)
	case 1: // wire loss: skip ahead in the sequence
		st.lastHole[exp] = [2]uint32{st.seqs[exp], uint32(1 + arg%32)}
		st.seqs[exp] += uint32(1 + arg%32)
	case 2: // duplicate the last datagram of this exporter
		if b := st.lastSent[exp]; b != nil {
			c.Inject(b)
		}
	case 3: // reorder-heal: deliver (part of) the last simulated hole late
		if h := st.lastHole[exp]; h[1] > 0 {
			count := int(h[1])
			if count > netflow.MaxRecordsPerDatagram {
				count = netflow.MaxRecordsPerDatagram
			}
			c.Inject(dgram(exp, h[0], count, uint32(60*(arg%10))))
			delete(st.lastHole, exp)
		}
	case 4: // corrupt record payload (accepted, then malformed-dropped)
		count := 1 + int(arg)%4
		b := dgram(exp, st.seqs[exp], count, 120)
		st.seqs[exp] += uint32(count)
		b[packet.HeaderSize] = 0xfe
		c.Inject(b)
	case 5: // partial processing budget on one shard (forced lag)
		c.ProcessAvailable(int(arg)%c.Shards(), int(arg))
	case 6: // mid-stream merge (must not disturb cross-count identity)
		_ = c.MergeNow()
	}
}
