package ingest

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"netsamp/internal/netflow"
	"netsamp/internal/packet"
)

// expEntry is one exporter's accounting on its owning shard: the
// flow-sequence tracker plus the ingest-tier invariant counters.
type expEntry struct {
	seq       netflow.SeqTracker
	received  uint64
	delivered uint64
	queued    uint64
	dropped   uint64
}

// shard is one collector shard: a bounded SPSC ring fed by the pump
// and drained by a single worker (live mode) or by ProcessAvailable
// (step mode). All counters, per-exporter state and pending per-OD
// bins live behind mu; the decode scratch buffers are worker-owned and
// never locked.
type shard struct {
	// progress counts records consumed (delivered or dropped) since
	// start. Every consumption site advances it with atomic.AddUint64;
	// the watchdog compares successive atomic.LoadUint64 snapshots
	// WITHOUT taking mu, so a worker wedged while holding mu cannot
	// also wedge the watchdog that exists to flag it. First in the
	// struct: 64-bit atomics require 8-byte alignment, which first
	// position guarantees even under 32-bit struct layout.
	progress uint64

	idx  int
	cfg  *Config
	ring *ring

	// stalled and gaveUp are the watchdog's lock-free view of the
	// corresponding reported flags: the watchdog reads and writes them
	// without mu, Snapshot folds stalled into the stats copy it takes,
	// and the supervisor mirrors GaveUp into gaveUp when it gives up.
	stalled atomic.Bool
	gaveUp  atomic.Bool
	// wake nudges a parked live worker after a push (capacity 1,
	// non-blocking send; a short backstop timer covers the lost-wakeup
	// window).
	wake chan struct{}

	// Estimation parameters, copied from the config.
	classify netflow.ODClassifier
	numOD    int
	interval uint32

	// Worker-owned decode scratch (single consumer; supervisor restarts
	// re-enter on the same goroutine, so no synchronization is needed).
	hdr  packet.Header
	recs []packet.Record
	// inflight describes the datagram being processed, so a restart
	// after a mid-datagram panic can account it as poisoned and skip
	// the slot instead of crash-looping on it.
	inflight struct {
		active   bool
		exporter uint32
		count    uint32
	}
	attempts uint64

	mu    sync.Mutex
	stats ShardStats           //netsamp:guardedby mu
	exps  map[uint32]*expEntry //netsamp:guardedby mu
	bins  map[uint32][]uint64  //netsamp:guardedby mu pending per-OD counts since the last merge
	free  [][]uint64           //netsamp:guardedby mu recycled count slices (bounded by live bin count)
	keys  []uint32             //netsamp:guardedby mu merge-order scratch, recycled so the merge is allocation-free
	lat   latHist              //netsamp:guardedby mu
}

func newShard(idx int, cfg *Config) *shard {
	return &shard{
		idx:      idx,
		cfg:      cfg,
		ring:     newRing(cfg.ringSize()),
		wake:     make(chan struct{}, 1),
		classify: cfg.Classifier,
		numOD:    len(cfg.Rho),
		interval: cfg.IntervalSeconds,
		recs:     make([]packet.Record, netflow.MaxRecordsPerDatagram),
		exps:     make(map[uint32]*expEntry),
		bins:     make(map[uint32][]uint64),
		stats:    ShardStats{Shard: idx},
	}
}

// offer is the pump side: account the datagram (sequence tracking and
// the received counter), then hand it off. The queued counters move
// before the slot is published, so the worker's decrement can never
// precede the increment and the invariant holds at every instant. live
// enables the Block policy's bounded wait (meaningless without a
// concurrent consumer).
func (s *shard) offer(b []byte, h *packet.Header, stamp int64, live bool) bool {
	count := uint64(h.Count)
	s.mu.Lock()
	e := s.exps[h.Exporter]
	if e == nil {
		e = &expEntry{}
		s.exps[h.Exporter] = e
	}
	lostDelta, dup := e.seq.Account(h.Seq, uint32(h.Count))
	s.stats.LostRecords = uint64(int64(s.stats.LostRecords) + lostDelta)
	if dup {
		s.stats.Duplicates++
	}
	s.stats.Datagrams++
	s.stats.Records += count
	e.received += count
	s.stats.Queued += count
	e.queued += count
	s.mu.Unlock()

	if s.ring.push(b, stamp) {
		s.wakeWorker()
		return true
	}
	if live && s.cfg.Policy == Block {
		deadline := time.Now().Add(s.cfg.blockDeadline())
		for {
			runtime.Gosched()
			if s.ring.push(b, stamp) {
				s.wakeWorker()
				return true
			}
			if !time.Now().Before(deadline) {
				break
			}
		}
	}
	// Overload: take the optimistic queued accounting back and count
	// the drop, per shard and per exporter.
	s.mu.Lock()
	s.stats.Queued -= count
	e.queued -= count
	s.stats.Dropped.Overload += count
	e.dropped += count
	s.mu.Unlock()
	return false
}

func (s *shard) wakeWorker() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// coarseThreshold is the ring occupancy at which the worker degrades
// to coarse batching: half full.
func (s *shard) coarseThreshold() int { return s.ring.capacity() / 2 }

// decodeSlot decodes the record payload of the datagram in b (header
// already parsed into s.hdr) into the reused s.recs buffer. The pump
// validated the length against the declared count, so the only failure
// mode left is a corrupt record payload.
//
//netsamp:noalloc
func (s *shard) decodeSlot(b []byte) (int, bool) {
	n := int(s.hdr.Count)
	if n == 0 || n > len(s.recs) {
		return 0, false
	}
	recs := s.recs[:n]
	off := packet.HeaderSize
	for i := range recs {
		if err := recs[i].DecodeFromBytes(b[off:]); err != nil {
			return 0, false
		}
		off += packet.RecordSize
	}
	return n, true
}

// accumulate classifies decoded records and folds their packet counts
// into the shard's pending per-OD interval bins. Caller holds mu (the
// merge reads and recycles these bins). Unclassified records are
// background traffic outside the measurement task, not loss.
//
//netsamp:noalloc
//netsamp:holds mu processSlot locks before folding the decoded batch
func (s *shard) accumulate(recs []packet.Record) {
	if s.classify == nil || s.numOD == 0 || s.interval == 0 {
		return
	}
	for i := range recs {
		od, ok := s.classify(recs[i].Key) //netsamp:allocflow-ok classifier installed at config time is a pure index lookup
		if !ok || od < 0 || od >= s.numOD {
			continue
		}
		bin := recs[i].Start - recs[i].Start%s.interval
		counts := s.bins[bin]
		if counts == nil {
			counts = s.newBinLocked(bin) //netsamp:allocflow-ok cold: one slice per new interval bin, amortized over the interval
		}
		counts[od] += recs[i].Packets
	}
}

// newBinLocked installs a recycled (or, rarely, fresh) per-OD count
// slice for a new interval bin — the cold once-per-interval path off
// the allocation-free accumulate loop. Caller holds mu.
func (s *shard) newBinLocked(bin uint32) []uint64 {
	var counts []uint64
	if n := len(s.free); n > 0 {
		counts = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		counts = make([]uint64, s.numOD)
	}
	s.bins[bin] = counts
	return counts
}

// consumeSlot fully processes one queued datagram: decode into reused
// buffers, classify/accumulate, and move its records from queued to
// delivered (or to the malformed drop bucket). locked says the caller
// already holds mu (coarse batching); nowNanos != 0 enables hand-off
// latency sampling. Returns the datagram's record count. The caller
// advances the ring afterwards.
func (s *shard) consumeSlot(sl *slot, locked bool, nowNanos int64) int {
	b := sl.buf[:sl.n]
	if s.hdr.DecodeFromBytes(b) != nil {
		// Unreachable: the pump validated the header before queueing.
		// Treat defensively as a zero-record datagram.
		return 0
	}
	count := uint64(s.hdr.Count)
	s.inflight.active = true
	s.inflight.exporter = s.hdr.Exporter
	s.inflight.count = uint32(count)
	nrec, decOK := s.decodeSlot(b)
	if !locked {
		s.mu.Lock()
		defer s.mu.Unlock()
	}
	if decOK {
		s.accumulate(s.recs[:nrec])
	}
	e := s.exps[s.hdr.Exporter]
	s.stats.Queued -= count
	e.queued -= count
	if decOK {
		s.stats.Delivered += count
		e.delivered += count
	} else {
		s.stats.Dropped.Malformed += count
		e.dropped += count
	}
	atomic.AddUint64(&s.progress, count)
	s.inflight.active = false
	if sl.stamp != 0 && nowNanos != 0 {
		s.lat.add(nowNanos - sl.stamp)
	}
	return int(count)
}

// processBatch consumes up to maxDatagrams queued datagrams. In coarse
// mode the whole sweep shares one critical section — the degraded
// cadence a backlogged shard switches to before dropping anything.
func (s *shard) processBatch(maxDatagrams int, coarse bool, nowNanos int64) (datagrams, records int) {
	if coarse {
		s.mu.Lock()
		defer s.mu.Unlock()
		s.stats.CoarseBatches++
	}
	for datagrams < maxDatagrams {
		sl, ok := s.ring.peek()
		if !ok {
			break
		}
		records += s.consumeSlot(sl, coarse, nowNanos)
		s.ring.advance()
		datagrams++
	}
	return datagrams, records
}

// processBudget is the step-mode consumer: drain queued datagrams until
// at least maxRecords records have been consumed (datagram granularity)
// or the ring is empty. Deterministic — no clock of its own, no coarse
// heuristics; nowNanos != 0 (a caller-supplied clock) enables hand-off
// latency sampling against InjectStamped stamps.
func (s *shard) processBudget(maxRecords int, nowNanos int64) int {
	done := 0
	for done < maxRecords {
		sl, ok := s.ring.peek()
		if !ok {
			break
		}
		done += s.consumeSlot(sl, false, nowNanos)
		s.ring.advance()
	}
	return done
}

// noteAttempt runs at live-worker (re)entry. On a restart after a
// panic it accounts the restart and, when the crash was mid-datagram,
// poisons that datagram: its records move from queued to the Poisoned
// drop bucket and the slot is skipped, so one bad input cannot
// crash-loop the shard and the invariant survives the crash. All other
// shard stats are untouched — restarts keep state.
func (s *shard) noteAttempt() {
	s.attempts++
	if s.attempts == 1 {
		return
	}
	s.mu.Lock()
	s.stats.Restarts++
	if s.inflight.active {
		count := uint64(s.inflight.count)
		e := s.exps[s.inflight.exporter]
		s.stats.Queued -= count
		e.queued -= count
		s.stats.Dropped.Poisoned += count
		e.dropped += count
		atomic.AddUint64(&s.progress, count)
		s.inflight.active = false
		s.mu.Unlock()
		s.ring.advance()
		return
	}
	s.mu.Unlock()
}

// runLive is one supervised attempt of the shard worker: drain the
// ring, degrading to coarse batches when the backlog crosses half the
// ring, pacing to CapacityPerShard when configured. On stop it drains
// whatever is queued, then returns nil.
func (s *shard) runLive(stop <-chan struct{}, progress func(), capacity int) error {
	s.noteAttempt()
	pace := newThrottle(capacity)
	backstop := time.NewTimer(time.Hour)
	defer backstop.Stop()
	for {
		n := s.ring.length()
		if n == 0 {
			select {
			case <-stop:
				// The pump is stopped before workers are; one final
				// sweep empties anything that raced in.
				s.processBatch(s.ring.capacity(), false, 0)
				return nil
			default:
			}
			if !backstop.Stop() {
				select {
				case <-backstop.C:
				default:
				}
			}
			backstop.Reset(time.Millisecond)
			select {
			case <-s.wake:
			case <-stop:
			case <-backstop.C:
			}
			continue
		}
		coarse := n >= s.coarseThreshold()
		batch := 1
		if coarse {
			batch = n
		}
		_, recs := s.processBatch(batch, coarse, time.Now().UnixNano())
		progress()
		pace.wait(recs)
	}
}

// shutdownDrain abandons everything still queued, accounting it as
// shutdown drops — after it, queued is zero and
// received == delivered + dropped holds exactly. Only call once the
// worker goroutine has exited (Close does): it takes over the
// consumer role.
func (s *shard) shutdownDrain() {
	for {
		sl, ok := s.ring.peek()
		if !ok {
			return
		}
		var h packet.Header
		if h.DecodeFromBytes(sl.buf[:sl.n]) == nil {
			count := uint64(h.Count)
			s.mu.Lock()
			e := s.exps[h.Exporter]
			s.stats.Queued -= count
			e.queued -= count
			s.stats.Dropped.Shutdown += count
			e.dropped += count
			s.mu.Unlock()
		}
		s.ring.advance()
	}
}

// throttle paces a live worker to a records-per-second capacity with a
// small token bucket — the knob that makes "4× overload" mean the same
// thing on any hardware.
type throttle struct {
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

func newThrottle(recordsPerSec int) *throttle {
	t := &throttle{rate: float64(recordsPerSec)}
	if t.rate > 0 {
		// Allow ~10ms of burst so pacing sleeps are coarse enough for
		// the OS timer, while the long-run rate stays exact.
		t.burst = t.rate / 100
		if t.burst < float64(netflow.MaxRecordsPerDatagram) {
			t.burst = float64(netflow.MaxRecordsPerDatagram)
		}
		t.tokens = t.burst
		t.last = time.Now()
	}
	return t
}

func (t *throttle) wait(consumed int) {
	if t.rate <= 0 || consumed == 0 {
		return
	}
	now := time.Now()
	t.tokens += now.Sub(t.last).Seconds() * t.rate
	t.last = now
	if t.tokens > t.burst {
		t.tokens = t.burst
	}
	t.tokens -= float64(consumed)
	if t.tokens < 0 {
		time.Sleep(time.Duration(-t.tokens / t.rate * float64(time.Second)))
	}
}
