package ingest

import (
	"context"
	"fmt"
	"net"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"netsamp/internal/netflow"
	"netsamp/internal/packet"
	"netsamp/internal/supervise"
	"netsamp/internal/topology"
)

// Collector is the sharded ingest tier. Build one with New, then
// either drive it passively (Inject / ProcessAvailable / MergeNow — a
// single-producer step mode, fully deterministic) or start live mode
// with Listen (UDP pump, supervised per-shard workers, periodic merge
// and watchdog). Close drains and finalizes the accounting in either
// mode.
type Collector struct {
	cfg    Config
	shards []*shard
	est    *netflow.Estimator // nil when estimation is not configured

	malformed atomic.Uint64 // datagrams rejected before attribution

	// Live-mode machinery; nil/zero in passive mode.
	conn     *net.UDPConn
	stop     chan struct{}
	wg       sync.WaitGroup
	live     atomic.Bool
	stopOnce sync.Once
	closed   atomic.Bool
}

// New builds a collector in passive (step) mode. Set cfg.Rho,
// cfg.IntervalSeconds and cfg.Classifier to enable the estimation
// stage; leave Rho nil for a pure counting tier.
func New(cfg Config) (*Collector, error) {
	c := &Collector{cfg: cfg}
	if len(cfg.Rho) > 0 {
		est, err := netflow.NewEstimator(cfg.IntervalSeconds, cfg.Rho, cfg.Classifier)
		if err != nil {
			return nil, err
		}
		c.est = est
	}
	n := cfg.shards()
	c.shards = make([]*shard, n)
	for i := range c.shards {
		c.shards[i] = newShard(i, &c.cfg)
	}
	return c, nil
}

// Shards returns the shard count.
func (c *Collector) Shards() int { return len(c.shards) }

// ingest is the shared pump path: validate cheaply, attribute to a
// shard by exporter hash, account, hand off. Datagrams that fail
// validation never enter the sequence accounting (a truncated datagram
// must not advance an exporter's expected sequence).
func (c *Collector) ingest(b []byte, stamp int64) bool {
	var h packet.Header
	if err := h.DecodeFromBytes(b); err != nil || h.Count == 0 {
		c.malformed.Add(1)
		return false
	}
	want := packet.HeaderSize + int(h.Count)*packet.RecordSize
	if len(b) != want || want > slotBytes {
		c.malformed.Add(1)
		return false
	}
	sh := c.shards[shardOf(h.Exporter, len(c.shards))]
	return sh.offer(b, &h, stamp, c.live.Load())
}

// Inject offers one export datagram to the tier in step mode: the
// caller is the pump. It returns whether the datagram was queued
// (false: malformed or dropped by the overload policy — accounted
// either way). At most one goroutine may Inject at a time; it may run
// concurrently with at most one ProcessAvailable per shard (the rings
// are single-producer/single-consumer).
func (c *Collector) Inject(b []byte) bool { return c.ingest(b, 0) }

// InjectStamped is Inject with a caller-supplied hand-off timestamp in
// nanoseconds (feeds the latency histogram; load generators pass their
// own clock so step mode stays clock-free).
func (c *Collector) InjectStamped(b []byte, stampNanos int64) bool { return c.ingest(b, stampNanos) }

// ProcessAvailable consumes up to maxRecords queued records on the
// given shard (datagram granularity, so it may run over by at most one
// datagram) and returns how many it consumed. This is the step-mode
// worker: calling it in a loop with a per-tick budget models a
// capacity-limited consumer deterministically, with no goroutines and
// no clock.
func (c *Collector) ProcessAvailable(shard, maxRecords int) int {
	return c.ProcessAvailableAt(shard, maxRecords, 0)
}

// ProcessAvailableAt is ProcessAvailable with a caller-supplied clock
// reading in nanoseconds: records consumed are latency-sampled against
// their InjectStamped stamps, so a load generator can measure hand-off
// latency without the tier owning a clock.
func (c *Collector) ProcessAvailableAt(shard, maxRecords int, nowNanos int64) int {
	if shard < 0 || shard >= len(c.shards) {
		return 0
	}
	return c.shards[shard].processBudget(maxRecords, nowNanos)
}

// ProcessAllAvailable drains every shard's queue completely (ascending
// shard order) and returns the records consumed.
func (c *Collector) ProcessAllAvailable() int {
	total := 0
	for i := range c.shards {
		for {
			n := c.shards[i].processBudget(1<<20, 0)
			total += n
			if n == 0 {
				break
			}
		}
	}
	return total
}

// MergeNow folds every shard's pending per-OD counts into the
// estimator, in ascending shard order, and refreshes the estimator's
// transport-loss fraction from the global accounting. The merged
// estimator state is bit-identical for any shard count: per-(bin, OD)
// totals are integer sums — exact and commutative — and the loss
// fraction is computed from global totals, never from per-shard
// intermediates. Count slices are recycled, so steady-state merging
// does not grow the tier's memory.
func (c *Collector) MergeNow() error {
	var lost, dropped, received uint64
	for _, s := range c.shards {
		s.mu.Lock()
		if c.est != nil {
			s.keys = s.keys[:0]
			for bin := range s.bins {
				s.keys = append(s.keys, bin)
			}
			slices.Sort(s.keys)
			for _, bin := range s.keys {
				counts := s.bins[bin]
				if err := c.est.AddCounts(bin, counts); err != nil {
					s.mu.Unlock()
					return err
				}
				for k := range counts {
					counts[k] = 0
				}
				s.free = append(s.free, counts)
				delete(s.bins, bin)
			}
		}
		lost += s.stats.LostRecords
		dropped += s.stats.Dropped.Total()
		received += s.stats.Records
		s.mu.Unlock()
	}
	if c.est != nil {
		return c.est.SetTransportLoss(lossFraction(lost, dropped, received))
	}
	return nil
}

// Estimates returns the merged per-interval estimates (nil when the
// tier runs without an estimator). Call MergeNow first to fold in any
// counts still pending on the shards.
func (c *Collector) Estimates() []netflow.BinEstimate {
	if c.est == nil {
		return nil
	}
	return c.est.Estimates()
}

// Snapshot returns the tier's merged accounting view: shards ascending,
// exporters ascending by ID. Each shard is captured atomically under
// its lock; the invariant holds within every shard and exporter entry.
func (c *Collector) Snapshot() View {
	v := View{
		Shards:             make([]ShardStats, 0, len(c.shards)),
		MalformedDatagrams: c.malformed.Load(),
	}
	var hist latHist
	byID := make(map[uint32]ExporterView)
	for _, s := range c.shards {
		s.mu.Lock()
		v.Shards = append(v.Shards, s.stats)
		// Stalled lives in the watchdog's lock-free mirror, not under
		// mu; fold it into the copy the caller sees.
		v.Shards[len(v.Shards)-1].Stalled = s.stalled.Load()
		for id, e := range s.exps {
			byID[id] = ExporterView{
				ID:        id,
				Shard:     s.idx,
				Received:  e.received,
				Delivered: e.delivered,
				Queued:    e.queued,
				Dropped:   e.dropped,
				Seq:       e.seq.Stats(),
			}
		}
		hist.merge(&s.lat)
		s.mu.Unlock()
	}
	for _, id := range topology.SortedKeys(byID) {
		v.Exporters = append(v.Exporters, byID[id])
	}
	for _, st := range v.Shards {
		v.Datagrams += st.Datagrams
		v.Records += st.Records
		v.Delivered += st.Delivered
		v.Queued += st.Queued
		v.Dropped.add(st.Dropped)
		v.LostRecords += st.LostRecords
		v.Duplicates += st.Duplicates
	}
	v.LossFraction = lossFraction(v.LostRecords, v.Dropped.Total(), v.Records)
	v.HandoffP99 = hist.quantile(0.99)
	return v
}

// LossFraction returns the current estimator-facing loss estimate —
// wire losses plus this tier's drops over everything the exporters
// emitted. This is what serve's loss probe reports to the controller.
func (c *Collector) LossFraction() float64 {
	var lost, dropped, received uint64
	for _, s := range c.shards {
		s.mu.Lock()
		lost += s.stats.LostRecords
		dropped += s.stats.Dropped.Total()
		received += s.stats.Records
		s.mu.Unlock()
	}
	return lossFraction(lost, dropped, received)
}

// Listen binds a UDP listener on addr ("127.0.0.1:0" picks an
// ephemeral port) and starts live mode: the socket pump, one
// supervised worker per shard, the periodic merge and the watchdog.
func (c *Collector) Listen(addr string) error {
	if c.live.Load() {
		return fmt.Errorf("ingest: already listening")
	}
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return fmt.Errorf("ingest: resolve %q: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return fmt.Errorf("ingest: listen: %w", err)
	}
	// Export traffic is bursty (timeout sweeps flush many flows at
	// once); a deep socket buffer absorbs what the rings momentarily
	// cannot. Best-effort — residual kernel drops surface as sequence
	// gaps, which the accounting already covers.
	_ = conn.SetReadBuffer(8 << 20)
	c.conn = conn
	c.stop = make(chan struct{})
	c.live.Store(true)

	c.wg.Add(1)
	go c.pump() //netsamp:ctx-ok Close() closes the UDP socket, which unblocks the read loop
	for _, s := range c.shards {
		c.wg.Add(1)
		go c.superviseShard(s) //netsamp:ctx-ok runLive selects on c.stop; the supervisor returns when it closes
	}
	c.wg.Add(2)
	go c.mergeLoop()
	go c.watchdogLoop()
	return nil
}

// Addr returns the live listener's address, for exporters to dial
// ("" in passive mode).
func (c *Collector) Addr() string {
	if c.conn == nil {
		return ""
	}
	return c.conn.LocalAddr().String()
}

// pump is the single producer for every shard ring: read a datagram,
// validate, account, hand off. It exits when the socket is closed.
func (c *Collector) pump() {
	defer c.wg.Done()
	buf := make([]byte, 65536)
	for {
		n, _, err := c.conn.ReadFromUDP(buf)
		if err != nil {
			return // socket closed by Close
		}
		c.ingest(buf[:n], time.Now().UnixNano())
	}
}

// superviseShard runs one shard's worker under the shared supervisor:
// panics become logged restarts with backoff, per-batch progress
// resets the failure budget, and a worker that exhausts MaxRestarts is
// marked GaveUp (its backlog is shutdown-dropped by Close; the pump
// keeps accounting overload drops meanwhile).
func (c *Collector) superviseShard(s *shard) {
	defer c.wg.Done()
	sup := &supervise.Supervisor{
		MaxFailures: c.cfg.MaxRestarts,
		Backoff:     c.cfg.restartBackoff(),
		Logf:        c.cfg.Logf,
	}
	err := sup.Run(context.Background(), func(ctx context.Context, progress func()) error {
		return s.runLive(c.stop, progress, c.cfg.CapacityPerShard)
	})
	if err != nil {
		s.mu.Lock()
		s.stats.GaveUp = true
		s.mu.Unlock()
		s.gaveUp.Store(true)
		c.cfg.logf("ingest: shard %d worker gave up: %v", s.idx, err)
	}
}

func (c *Collector) mergeLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.mergeEvery())
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			if err := c.MergeNow(); err != nil {
				c.cfg.logf("ingest: merge: %v", err)
			}
		}
	}
}

// watchdogLoop flags shards that hold queued work but make no
// consumption progress across three consecutive checks. A panicking
// worker restarts via its supervisor; a silently wedged one cannot be
// preempted in-process, so the watchdog's job is to make the wedge
// loudly visible (Stalled flag + log) while the bounded ring and the
// pump's drop accounting keep the rest of the tier healthy.
//
// The loop is deliberately lock-free: it reads the shard's atomic
// progress counter and the SPSC ring's cursors, never s.mu. A worker
// that wedges while holding s.mu — the nastiest stall there is — would
// otherwise wedge the watchdog on the same lock and go unreported.
func (c *Collector) watchdogLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.watchdogEvery())
	defer t.Stop()
	lastConsumed := make([]uint64, len(c.shards))
	stuck := make([]int, len(c.shards))
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			for i, s := range c.shards {
				consumed := atomic.LoadUint64(&s.progress)
				queued := s.ring.length()
				if queued > 0 && consumed == lastConsumed[i] && !s.gaveUp.Load() {
					stuck[i]++
					if stuck[i] >= 3 && !s.stalled.Load() {
						s.stalled.Store(true)
						c.cfg.logf("ingest: shard %d stalled: %d datagrams queued, no progress for %d checks", i, queued, stuck[i])
					}
				} else {
					stuck[i] = 0
					if s.stalled.Load() && consumed != lastConsumed[i] {
						s.stalled.Store(false)
						c.cfg.logf("ingest: shard %d recovered", i)
					}
				}
				lastConsumed[i] = consumed
			}
		}
	}
}

// Close shuts the tier down and finalizes the accounting: in live mode
// it stops the pump, lets workers drain their rings, then
// shutdown-drops whatever remains (a GaveUp shard's backlog), and runs
// a final merge. After Close, Queued is zero everywhere and
// received == delivered + dropped holds exactly.
func (c *Collector) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	var err error
	if c.live.Load() {
		c.stopOnce.Do(func() { close(c.stop) })
		err = c.conn.Close()
		c.wg.Wait()
	}
	for _, s := range c.shards {
		s.shutdownDrain()
	}
	if merr := c.MergeNow(); err == nil {
		err = merr
	}
	return err
}
