package ingest

import (
	"encoding/binary"
	"fmt"
	"testing"
	"time"

	"netsamp/internal/netflow"
)

// benchHarness is a step-mode pipeline driver with preallocated,
// in-place-mutated datagram buffers: the steady state injects, decodes
// and accumulates without a single heap allocation, which is what the
// allocs/op column of these benchmarks pins.
type benchHarness struct {
	col  *Collector
	bufs [][]byte // one reusable full datagram per exporter
	seqs []uint32
}

func newBenchHarness(b *testing.B, shards, exporters, ring int) *benchHarness {
	b.Helper()
	col, err := New(Config{
		Shards:          shards,
		RingSize:        ring,
		IntervalSeconds: 300,
		Rho:             testRho,
		Classifier:      testClassifier,
	})
	if err != nil {
		b.Fatal(err)
	}
	h := &benchHarness{col: col, seqs: make([]uint32, exporters)}
	for e := 0; e < exporters; e++ {
		h.bufs = append(h.bufs, dgram(uint32(1+e), 1, netflow.MaxRecordsPerDatagram, 0))
		h.seqs[e] = 1
	}
	return h
}

// inject sends one full datagram from exporter e, bumping the sequence
// number in place — no buffer is rebuilt.
func (h *benchHarness) inject(e int, stamp int64) bool {
	h.seqs[e] += netflow.MaxRecordsPerDatagram
	binary.LittleEndian.PutUint32(h.bufs[e][4:], h.seqs[e])
	return h.col.InjectStamped(h.bufs[e], stamp)
}

// BenchmarkIngestSteadyState4Shards is the headline throughput number:
// 8 exporters feeding a 4-shard collector in step mode, every datagram
// processed and periodically merged. One op is one full datagram
// (34 records); records/s is reported as a custom metric and allocs/op
// must be zero — the static noalloc check and this pin guard the same
// contract from both sides.
func BenchmarkIngestSteadyState4Shards(b *testing.B) {
	h := newBenchHarness(b, 4, 8, 1024)
	// Warm the exporter tables, bins and rings out of the timed region.
	for e := range h.bufs {
		h.inject(e, 0)
	}
	h.col.ProcessAllAvailable()
	if err := h.col.MergeNow(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		h.inject(i%len(h.bufs), 0)
		if i%256 == 255 {
			h.col.ProcessAllAvailable()
		}
	}
	h.col.ProcessAllAvailable()
	elapsed := time.Since(start)
	b.StopTimer()
	if err := h.col.MergeNow(); err != nil {
		b.Fatal(err)
	}
	v := h.col.Snapshot()
	if err := v.CheckInvariant(); err != nil {
		b.Fatal(err)
	}
	if v.Dropped.Total() != 0 {
		b.Fatalf("steady-state benchmark dropped %d records", v.Dropped.Total())
	}
	if elapsed > 0 {
		b.ReportMetric(float64(v.Delivered)/elapsed.Seconds(), "records/s")
	}
}

// BenchmarkIngestOverload sweeps offered load at 1x/2x/4x of the
// per-op processing budget: each op injects multiple×budget records and
// processes exactly budget per shard, so the rings fill and the
// drop-newest policy sheds the excess. Reported metrics: delivered
// records/s, the steady-state drop fraction, and the p99 hand-off
// latency (InjectStamped → consume, sampled with the benchmark's
// clock).
func BenchmarkIngestOverload(b *testing.B) {
	for _, multiple := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("%dx", multiple), func(b *testing.B) {
			const shards = 4
			h := newBenchHarness(b, shards, 8, 256)
			// Per-op budget: each shard processes up to budget records;
			// exporters offer multiple× that in aggregate.
			const budget = 4096
			dgramsPerOp := multiple * shards * budget / netflow.MaxRecordsPerDatagram
			for e := range h.bufs {
				h.inject(e, 0)
			}
			h.col.ProcessAllAvailable()
			b.ReportAllocs()
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				for d := 0; d < dgramsPerOp; d++ {
					h.inject(d%len(h.bufs), time.Now().UnixNano())
				}
				now := time.Now().UnixNano()
				for s := 0; s < shards; s++ {
					h.col.ProcessAvailableAt(s, budget, now)
				}
			}
			elapsed := time.Since(start)
			b.StopTimer()
			h.col.ProcessAllAvailable()
			if err := h.col.MergeNow(); err != nil {
				b.Fatal(err)
			}
			v := h.col.Snapshot()
			if err := v.CheckInvariant(); err != nil {
				b.Fatal(err)
			}
			if v.Records > 0 {
				b.ReportMetric(float64(v.Dropped.Total())/float64(v.Records), "drop-frac")
			}
			if elapsed > 0 {
				b.ReportMetric(float64(v.Delivered)/elapsed.Seconds(), "records/s")
			}
			b.ReportMetric(float64(v.HandoffP99), "p99-handoff-ns")
		})
	}
}

// TestZeroAllocAtMillionRecords pins the zero-alloc contract at scale:
// one million records through the full step-mode pipeline — inject,
// decode, classify, accumulate, merge — with zero heap allocations
// after warm-up. The static //netsamp:noalloc analysis points at the
// offending line when this regresses; this test proves the composed
// path end to end.
func TestZeroAllocAtMillionRecords(t *testing.T) {
	h := &benchHarness{}
	col, err := New(Config{Shards: 4, RingSize: 1024, IntervalSeconds: 300, Rho: testRho, Classifier: testClassifier})
	if err != nil {
		t.Fatal(err)
	}
	h.col = col
	for e := 0; e < 8; e++ {
		h.bufs = append(h.bufs, dgram(uint32(1+e), 1, netflow.MaxRecordsPerDatagram, 0))
		h.seqs = append(h.seqs, 1)
	}
	// Warm-up: touch every exporter entry, bin and the merge path.
	for i := 0; i < 64; i++ {
		h.inject(i%8, 0)
	}
	col.ProcessAllAvailable()
	if err := col.MergeNow(); err != nil {
		t.Fatal(err)
	}

	// 110 runs × 270 datagrams × 34 records ≈ 1.01M records.
	const runs = 110
	const dgramsPerRun = 270
	var processed uint64
	allocs := testing.AllocsPerRun(runs, func() {
		for d := 0; d < dgramsPerRun; d++ {
			h.inject(d%8, 0)
			if d%64 == 63 {
				col.ProcessAllAvailable()
			}
		}
		processed += uint64(col.ProcessAllAvailable())
		if err := col.MergeNow(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("%.1f allocs per %d-record run; the steady state must not allocate", allocs, dgramsPerRun*netflow.MaxRecordsPerDatagram)
	}
	v := col.Snapshot()
	if err := v.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
	if v.Records < 1_000_000 {
		t.Fatalf("pin covered only %d records, want >= 1M", v.Records)
	}
	if v.Dropped.Total() != 0 {
		t.Fatalf("pin dropped %d records; it must run drop-free", v.Dropped.Total())
	}
}
