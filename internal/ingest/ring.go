package ingest

import (
	"sync/atomic"

	"netsamp/internal/netflow"
	"netsamp/internal/packet"
)

// slotBytes is the fixed capacity of one ring slot: exactly one maximal
// export datagram (header + 34 records = 1376 bytes, the exporter's MTU
// budget). The pump rejects anything larger as malformed before the
// ring is involved, so a slot copy can never truncate, and the tier's
// memory is RingSize × slotBytes per shard — bounded by construction,
// independent of offered load.
const slotBytes = packet.HeaderSize + netflow.MaxRecordsPerDatagram*packet.RecordSize

// slot is one reused datagram buffer. stamp carries the pump's
// hand-off timestamp (UnixNano) for latency accounting; zero means
// unstamped (step mode).
type slot struct {
	n     uint32
	stamp int64
	buf   [slotBytes]byte
}

// ring is a bounded single-producer/single-consumer queue of reused
// datagram slots. The producer owns tail, the consumer owns head; each
// publishes its cursor with a sequentially-consistent atomic store, so
// the consumer observes a slot's contents only after the producer's
// copy into it completed, and the producer reuses a slot only after
// the consumer advanced past it. No locks, no allocation after
// construction.
type ring struct {
	slots []slot
	mask  uint64
	head  atomic.Uint64 // next slot to consume (consumer-owned)
	tail  atomic.Uint64 // next slot to fill (producer-owned)
}

// newRing builds a ring with capacity ≥ size, rounded up to a power of
// two so index masking replaces modulo.
func newRing(size int) *ring {
	sz := 1
	for sz < size {
		sz <<= 1
	}
	return &ring{slots: make([]slot, sz), mask: uint64(sz - 1)}
}

// capacity returns the slot count.
func (r *ring) capacity() int { return len(r.slots) }

// length returns the current occupancy. Safe from either side; the
// value is a snapshot and may be stale by one push or advance.
func (r *ring) length() int { return int(r.tail.Load() - r.head.Load()) }

// push copies b into the next free slot and publishes it. Producer
// side only. It reports false, without copying, when the ring is full.
func (r *ring) push(b []byte, stamp int64) bool {
	t := r.tail.Load()
	if int(t-r.head.Load()) == len(r.slots) {
		return false
	}
	sl := &r.slots[t&r.mask]
	sl.n = uint32(copy(sl.buf[:], b))
	sl.stamp = stamp
	r.tail.Store(t + 1)
	return true
}

// peek returns the oldest queued slot without consuming it, so the
// consumer can process in place and release the slot only when done.
// Consumer side only.
func (r *ring) peek() (*slot, bool) {
	h := r.head.Load()
	if h == r.tail.Load() {
		return nil, false
	}
	return &r.slots[h&r.mask], true
}

// advance releases the slot the last peek returned, making it
// reusable by the producer. Consumer side only.
func (r *ring) advance() { r.head.Store(r.head.Load() + 1) }
