// Package sampling simulates the packet-sampling process the optimizer
// configures and measures the accuracy the paper's evaluation reports.
//
// Each monitor samples packets i.i.d. with its link's probability p_i,
// independently of other monitors (paper Section III). For an OD pair
// whose path crosses monitored links i ∈ row, a packet is counted if it
// is sampled at least once, so the per-packet inclusion probability is
// the effective sampling rate ρ. The OD size estimator is X/ρ for X
// sampled packets, and the paper's reported metric is the absolute
// relative accuracy 1 − |X/ρ − S|/S averaged over repeated experiments
// (Section V-B runs 20 sampling experiments per configuration).
package sampling

import (
	"fmt"
	"math"

	"netsamp/internal/rng"
	"netsamp/internal/routing"
	"netsamp/internal/topology"
)

// EffectiveRateExact returns ρ = 1 − Π_i (1 − p_i) over the monitored
// links of one OD pair (paper equation (1)).
func EffectiveRateExact(rates []float64) float64 {
	q := 1.0
	for _, p := range rates {
		q *= 1 - p
	}
	return 1 - q
}

// EffectiveRateApprox returns ρ = Σ_i p_i, the paper's working
// approximation (7), valid when rates are small and paths short.
func EffectiveRateApprox(rates []float64) float64 {
	s := 0.0
	for _, p := range rates {
		s += p
	}
	return s
}

// Estimate renormalizes a sampled packet count by the effective rate:
// the unbiased size estimator X/ρ. It returns an error for ρ <= 0.
func Estimate(sampled int64, rho float64) (float64, error) {
	if rho <= 0 {
		return 0, fmt.Errorf("sampling: effective rate %v, want > 0", rho)
	}
	return float64(sampled) / rho, nil
}

// Accuracy returns 1 − |est − actual|/actual, the paper's accuracy
// metric, clamped below at 0 (an estimate more than 100% off carries no
// information). It panics if actual <= 0.
func Accuracy(est, actual float64) float64 {
	if actual <= 0 {
		panic("sampling: non-positive actual size")
	}
	a := 1 - math.Abs(est-actual)/actual
	if a < 0 {
		return 0
	}
	return a
}

// SampleOD simulates one sampling experiment for an OD pair of the given
// total size (packets in the interval): each packet is retained
// independently with probability rho, so the sampled count is
// Binomial(size, rho).
func SampleOD(size int64, rho float64, r *rng.Source) int64 {
	return r.Binomial(size, rho)
}

// Result summarizes repeated sampling experiments for one OD pair.
type Result struct {
	Name string
	// Actual is the true OD size (packets per interval).
	Actual int64
	// Rho is the effective sampling rate used for renormalization.
	Rho float64
	// MeanAccuracy and StdAccuracy aggregate 1−|X/ρ−S|/S over the trials.
	MeanAccuracy, StdAccuracy float64
	// MeanEstimate is the average renormalized size estimate.
	MeanEstimate float64
}

// Experiment runs trials independent sampling experiments for one OD
// pair and aggregates the accuracy statistics.
func Experiment(name string, size int64, rho float64, trials int, r *rng.Source) (Result, error) {
	if size <= 0 {
		return Result{}, fmt.Errorf("sampling: OD %q has size %d, want > 0", name, size)
	}
	if trials <= 0 {
		return Result{}, fmt.Errorf("sampling: %d trials, want > 0", trials)
	}
	if rho <= 0 {
		// An unmonitored OD pair: the estimator is undefined; report zero
		// accuracy, matching the utility convention M(0) = 0.
		return Result{Name: name, Actual: size, Rho: rho}, nil
	}
	res := Result{Name: name, Actual: size, Rho: rho}
	var sumAcc, sumAcc2, sumEst float64
	for i := 0; i < trials; i++ {
		x := SampleOD(size, rho, r)
		est, err := Estimate(x, rho)
		if err != nil {
			return Result{}, err
		}
		acc := Accuracy(est, float64(size))
		sumAcc += acc
		sumAcc2 += acc * acc
		sumEst += est
	}
	n := float64(trials)
	res.MeanAccuracy = sumAcc / n
	res.MeanEstimate = sumEst / n
	variance := sumAcc2/n - res.MeanAccuracy*res.MeanAccuracy
	if variance > 0 {
		res.StdAccuracy = math.Sqrt(variance)
	}
	return res, nil
}

// PlanRates extracts, for OD pair k of the routing matrix, the sampling
// rates of the links it traverses, given per-LinkID rates (indexed by
// topology.LinkID).
func PlanRates(m *routing.Matrix, k int, linkRates map[topology.LinkID]float64) []float64 {
	row := m.Rows[k]
	out := make([]float64, 0, len(row))
	for _, lid := range row {
		if p := linkRates[lid]; p > 0 {
			out = append(out, p)
		}
	}
	return out
}

// Summary aggregates per-pair accuracies the way the paper's Figure 2
// reports them: average, worst and best OD pair.
type Summary struct {
	Average, Worst, Best float64
}

// Summarize computes the Figure-2 aggregate over per-pair results.
func Summarize(results []Result) Summary {
	if len(results) == 0 {
		return Summary{}
	}
	s := Summary{Worst: math.Inf(1), Best: math.Inf(-1)}
	for _, r := range results {
		s.Average += r.MeanAccuracy
		s.Worst = math.Min(s.Worst, r.MeanAccuracy)
		s.Best = math.Max(s.Best, r.MeanAccuracy)
	}
	s.Average /= float64(len(results))
	return s
}

// Periodic simulates deterministic 1-in-N sampling of an OD pair of the
// given size: the number of selected packets when every Nth packet is
// taken, starting from a random phase. Routers often implement
// "sampled NetFlow" this way; Duffield et al. (cited by the paper,
// Section II) show that periodic and random sampling give essentially
// the same flow statistics on high-speed links, which justifies the
// i.i.d. model in the analysis. SamplePeriodic lets that claim be
// checked empirically against SampleOD.
func SamplePeriodic(size int64, n int64, r *rng.Source) int64 {
	if size <= 0 || n <= 0 {
		return 0
	}
	if n == 1 {
		return size
	}
	phase := int64(r.Intn(int(n)))
	// Packets at positions phase, phase+n, ... are selected.
	if phase >= size {
		return 0
	}
	return (size-phase-1)/n + 1
}
