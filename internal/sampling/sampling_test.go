package sampling

import (
	"math"
	"testing"

	"netsamp/internal/rng"
	"netsamp/internal/routing"
	"netsamp/internal/topology"
)

func TestEffectiveRates(t *testing.T) {
	rates := []float64{0.01, 0.02}
	exact := EffectiveRateExact(rates)
	want := 1 - 0.99*0.98
	if math.Abs(exact-want) > 1e-15 {
		t.Fatalf("exact = %v, want %v", exact, want)
	}
	approx := EffectiveRateApprox(rates)
	if approx != 0.03 {
		t.Fatalf("approx = %v", approx)
	}
	// Approximation error is O(p²): tiny at paper-scale rates.
	if math.Abs(exact-approx) > 0.001 {
		t.Fatalf("models diverge too much at low rates: %v vs %v", exact, approx)
	}
	if EffectiveRateExact(nil) != 0 || EffectiveRateApprox(nil) != 0 {
		t.Fatal("empty rate sets must give ρ = 0")
	}
	// Exact rate saturates at 1.
	if got := EffectiveRateExact([]float64{1, 0.5}); got != 1 {
		t.Fatalf("exact with a rate of 1 = %v", got)
	}
}

func TestEstimate(t *testing.T) {
	est, err := Estimate(50, 0.01)
	if err != nil || est != 5000 {
		t.Fatalf("Estimate = %v, %v", est, err)
	}
	if _, err := Estimate(50, 0); err == nil {
		t.Fatal("Estimate with ρ=0 accepted")
	}
}

func TestEstimatorUnbiased(t *testing.T) {
	// E[X/ρ] = S: the mean estimate over many trials must approach the
	// actual size.
	r := rng.New(9)
	const size, rho, trials = 200000, 0.005, 2000
	sum := 0.0
	for i := 0; i < trials; i++ {
		est, err := Estimate(SampleOD(size, rho, r), rho)
		if err != nil {
			t.Fatal(err)
		}
		sum += est
	}
	mean := sum / trials
	if math.Abs(mean-size)/size > 0.01 {
		t.Fatalf("mean estimate = %v, want ≈%v", mean, size)
	}
}

func TestAccuracy(t *testing.T) {
	if got := Accuracy(90, 100); math.Abs(got-0.9) > 1e-15 {
		t.Fatalf("Accuracy = %v", got)
	}
	if got := Accuracy(110, 100); math.Abs(got-0.9) > 1e-15 {
		t.Fatalf("Accuracy over = %v", got)
	}
	if got := Accuracy(100, 100); got != 1 {
		t.Fatalf("perfect accuracy = %v", got)
	}
	if got := Accuracy(500, 100); got != 0 {
		t.Fatalf("clamped accuracy = %v", got)
	}
}

func TestAccuracyPanicsOnBadActual(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Accuracy(1, 0)
}

func TestExperimentStatistics(t *testing.T) {
	r := rng.New(10)
	res, err := Experiment("od", 1_000_000, 0.01, 50, r)
	if err != nil {
		t.Fatal(err)
	}
	// ρS = 10000 sampled packets: relative error ~1/√(ρS) = 1%, so the
	// mean accuracy should be around 0.99.
	if res.MeanAccuracy < 0.98 || res.MeanAccuracy > 1 {
		t.Fatalf("MeanAccuracy = %v", res.MeanAccuracy)
	}
	if res.StdAccuracy < 0 || res.StdAccuracy > 0.05 {
		t.Fatalf("StdAccuracy = %v", res.StdAccuracy)
	}
	if math.Abs(res.MeanEstimate-1_000_000)/1_000_000 > 0.01 {
		t.Fatalf("MeanEstimate = %v", res.MeanEstimate)
	}
}

func TestExperimentHigherRateMoreAccurate(t *testing.T) {
	r := rng.New(11)
	lo, err := Experiment("od", 100000, 0.001, 200, r)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := Experiment("od", 100000, 0.05, 200, r)
	if err != nil {
		t.Fatal(err)
	}
	if hi.MeanAccuracy <= lo.MeanAccuracy {
		t.Fatalf("accuracy not increasing in ρ: %v vs %v", lo.MeanAccuracy, hi.MeanAccuracy)
	}
}

func TestExperimentUnmonitored(t *testing.T) {
	r := rng.New(12)
	res, err := Experiment("od", 1000, 0, 10, r)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanAccuracy != 0 {
		t.Fatalf("unmonitored accuracy = %v", res.MeanAccuracy)
	}
}

func TestExperimentErrors(t *testing.T) {
	r := rng.New(13)
	if _, err := Experiment("od", 0, 0.1, 10, r); err == nil {
		t.Fatal("zero size accepted")
	}
	if _, err := Experiment("od", 10, 0.1, 0, r); err == nil {
		t.Fatal("zero trials accepted")
	}
}

func TestPlanRates(t *testing.T) {
	g := topology.New()
	a, b, c := g.AddNode("A"), g.AddNode("B"), g.AddNode("C")
	g.AddDuplex(a, b, topology.OC48, 1)
	g.AddDuplex(b, c, topology.OC48, 1)
	tbl := routing.ComputeTable(g)
	m, err := routing.BuildMatrix(tbl, []routing.ODPair{{Name: "A->C", Src: a, Dst: c}})
	if err != nil {
		t.Fatal(err)
	}
	ab, _ := g.FindLink(a, b)
	rates := map[topology.LinkID]float64{ab: 0.02}
	got := PlanRates(m, 0, rates)
	if len(got) != 1 || got[0] != 0.02 {
		t.Fatalf("PlanRates = %v", got)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]Result{
		{MeanAccuracy: 0.9},
		{MeanAccuracy: 0.5},
		{MeanAccuracy: 1.0},
	})
	if math.Abs(s.Average-0.8) > 1e-12 || s.Worst != 0.5 || s.Best != 1.0 {
		t.Fatalf("Summary = %+v", s)
	}
	empty := Summarize(nil)
	if empty.Average != 0 {
		t.Fatalf("empty summary = %+v", empty)
	}
}

// TestAccuracyMatchesUtilityPrediction ties the simulator back to the
// utility model: the measured mean squared relative error must match
// E[SRE](ρ) = (1-ρ)/ρ·(1/S) for fixed-size flows.
func TestAccuracyMatchesUtilityPrediction(t *testing.T) {
	r := rng.New(14)
	const size, rho, trials = 50000, 0.004, 5000
	sumSRE := 0.0
	for i := 0; i < trials; i++ {
		est, err := Estimate(SampleOD(size, rho, r), rho)
		if err != nil {
			t.Fatal(err)
		}
		rel := (est - size) / size
		sumSRE += rel * rel
	}
	got := sumSRE / trials
	want := (1 - rho) / rho * (1.0 / size)
	if math.Abs(got-want)/want > 0.08 {
		t.Fatalf("measured E[SRE] = %v, model %v", got, want)
	}
}

func TestSamplePeriodicCount(t *testing.T) {
	r := rng.New(20)
	// Exact multiples: always size/n regardless of phase.
	for i := 0; i < 100; i++ {
		if got := SamplePeriodic(1000, 10, r); got != 100 {
			t.Fatalf("SamplePeriodic(1000, 10) = %d", got)
		}
	}
	if got := SamplePeriodic(5, 1, r); got != 5 {
		t.Fatalf("1-in-1 = %d", got)
	}
	if got := SamplePeriodic(0, 10, r); got != 0 {
		t.Fatalf("empty = %d", got)
	}
	// Non-multiple: count is floor or ceil of size/n depending on phase.
	for i := 0; i < 1000; i++ {
		got := SamplePeriodic(1005, 10, r)
		if got != 100 && got != 101 {
			t.Fatalf("SamplePeriodic(1005, 10) = %d", got)
		}
	}
}

// TestPeriodicMatchesRandomSampling reproduces the Duffield et al.
// observation the paper relies on (Section II): the size estimator
// behaves the same under periodic 1-in-N and random rate-1/N sampling —
// same mean, and periodic has no larger error.
func TestPeriodicMatchesRandomSampling(t *testing.T) {
	r := rng.New(21)
	const size, n, trials = 200000, 100, 3000
	rho := 1.0 / n
	var sumP, sumR, sreP, sreR float64
	for i := 0; i < trials; i++ {
		p, err := Estimate(SamplePeriodic(size, n, r), rho)
		if err != nil {
			t.Fatal(err)
		}
		q, err := Estimate(SampleOD(size, rho, r), rho)
		if err != nil {
			t.Fatal(err)
		}
		sumP += p
		sumR += q
		relP := (p - size) / size
		relR := (q - size) / size
		sreP += relP * relP
		sreR += relR * relR
	}
	meanP, meanR := sumP/trials, sumR/trials
	if math.Abs(meanP-size)/size > 0.005 || math.Abs(meanR-size)/size > 0.005 {
		t.Fatalf("estimators biased: periodic %v random %v", meanP, meanR)
	}
	// Periodic sampling of a contiguous packet stream has lower variance
	// than binomial sampling (no per-packet randomness); it must not be
	// substantially worse.
	if sreP/trials > 1.2*(sreR/trials)+1e-9 {
		t.Fatalf("periodic E[SRE] %v far above random %v", sreP/trials, sreR/trials)
	}
}
