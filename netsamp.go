// Package netsamp is an open-source implementation of the joint monitor
// activation and sampling-rate optimization of Cantieni, Iannaccone,
// Barakat, Diot and Thiran, "Reformulating the Monitor Placement
// Problem: Optimal Network-Wide Sampling" (CoNEXT 2006).
//
// Given a backbone where every link can host a NetFlow-style packet
// sampler, netsamp answers: which monitors should be activated, and at
// what sampling rate, so that a measurement task — estimating the sizes
// of a set of origin-destination (OD) pairs — is achieved with maximum
// accuracy under a network-wide resource budget θ? Placement and rate
// selection fall out of one convex program solved by gradient projection
// with KKT verification; links whose optimal rate is zero simply keep
// their monitors off.
//
// The typical workflow:
//
//	g := netsamp.NewGraph()                       // build the topology
//	... g.AddNode / g.AddDuplex ...
//	tbl := netsamp.ComputeRouting(g)              // ISIS-like SPF
//	m, _ := netsamp.BuildRoutingMatrix(tbl, pairs)
//	loads, _ := netsamp.LinkLoads(g, tbl, demands)
//	prob, _, _ := netsamp.BuildProblem(netsamp.PlanInput{
//	    Matrix: m, Loads: loads, Candidates: candidates,
//	    InvMeanSizes: invSizes, Budget: netsamp.BudgetPerInterval(1e5, 300),
//	})
//	sol, _ := netsamp.Solve(prob, netsamp.Options{})
//	rates := netsamp.RatesByLink(sol, candidates)  // deploy these
//
// The packages under internal/ implement the substrates (topology,
// routing, traffic, NetFlow export pipeline, sampling simulator,
// GEANT evaluation scenario); this package re-exports the public
// surface. cmd/netsamp regenerates every table and figure of the
// paper's evaluation; see DESIGN.md and EXPERIMENTS.md.
package netsamp

import (
	"netsamp/internal/control"
	"netsamp/internal/core"
	"netsamp/internal/engine"
	"netsamp/internal/geant"
	"netsamp/internal/loadtrack"
	"netsamp/internal/plan"
	"netsamp/internal/routing"
	"netsamp/internal/topology"
	"netsamp/internal/traffic"
)

// Topology surface.
type (
	// Graph is a directed backbone multigraph of PoPs and links.
	Graph = topology.Graph
	// Node is a vertex of the graph; NodeID identifies it.
	Node = topology.Node
	// NodeID identifies a node within a Graph.
	NodeID = topology.NodeID
	// Link is a unidirectional edge; LinkID identifies it.
	Link = topology.Link
	// LinkID identifies a link within a Graph.
	LinkID = topology.LinkID
)

// SONET/SDH line rates (bits per second) for Link capacities.
const (
	OC3   = topology.OC3
	OC12  = topology.OC12
	OC48  = topology.OC48
	OC192 = topology.OC192
)

// NewGraph returns an empty topology.
func NewGraph() *Graph { return topology.New() }

// Routing surface.
type (
	// RoutingTable holds all-pairs shortest paths.
	RoutingTable = routing.Table
	// ODPair names one origin-destination pair of a measurement task.
	ODPair = routing.ODPair
	// RoutingMatrix is the per-pair link incidence (the matrix R).
	RoutingMatrix = routing.Matrix
	// Path is a directed path through the graph.
	Path = routing.Path
)

// ComputeRouting runs SPF from every node.
func ComputeRouting(g *Graph) *RoutingTable { return routing.ComputeTable(g) }

// BuildRoutingMatrix routes the OD pairs and assembles the matrix R.
func BuildRoutingMatrix(t *RoutingTable, pairs []ODPair) (*RoutingMatrix, error) {
	return routing.BuildMatrix(t, pairs)
}

// Traffic surface.
type (
	// Demand is one OD pair's offered packet rate.
	Demand = traffic.Demand
	// TrafficMatrix is a set of demands.
	TrafficMatrix = traffic.Matrix
)

// Gravity generates a gravity-model traffic matrix (see traffic.Gravity).
var Gravity = traffic.Gravity

// LinkLoads routes a traffic matrix and returns per-link packet rates.
var LinkLoads = traffic.LinkLoads

// Optimization surface (the paper's contribution).
type (
	// Problem is one instance of the network-wide sampling problem.
	Problem = core.Problem
	// Pair is one OD pair of the measurement task within a Problem.
	Pair = core.Pair
	// Utility scores the information of a measurement at rate ρ.
	Utility = core.Utility
	// SRE is the paper's squared-relative-error utility.
	SRE = core.SRE
	// Options tunes the gradient-projection solver.
	Options = core.Options
	// Solution is the optimizer output with its KKT certificate.
	Solution = core.Solution
	// Stats describes a solver run.
	Stats = core.Stats
	// MaxMinOptions tunes the max-min extension solver.
	MaxMinOptions = core.MaxMinOptions
)

// RateModel abstracts how per-link sampling rates combine into a pair's
// effective sampling rate (value, gradient and line-search hooks). The
// three implementations are package singletons below; a nil model in
// Problem.Model or PlanInput.Model selects ModelLinear.
type RateModel = core.RateModel

// The rate models: the paper's additive working model (7), the exact
// independent-sampling product model (1), and the cSamp-style
// coordinated model (disjoint hash ranges make the additive form exact,
// deployed as min(1, Σ f·p)).
var (
	ModelLinear           = core.ModelLinear
	ModelIndependentExact = core.ModelIndependentExact
	ModelCoordinated      = core.ModelCoordinated
)

// ModelByName resolves "linear", "exact" / "independent-exact", or
// "coordinated" to its RateModel.
var ModelByName = core.ModelByName

// NewSRE builds the SRE utility for mean inverse OD size c = E[1/S].
var NewSRE = core.NewSRE

// Solve runs the gradient projection method and returns the optimum.
var Solve = core.Solve

// SolveMaxMin approximately maximizes the worst pair's utility (the
// alternative objective the paper defers to future work).
var SolveMaxMin = core.SolveMaxMin

// BudgetPerInterval converts θ packets-per-interval into the sampled
// packet rate used by Problem.Budget.
var BudgetPerInterval = core.BudgetPerInterval

// Planning surface: mapping between topology links and dense problems.
type (
	// PlanInput assembles a problem from substrate objects.
	PlanInput = plan.Input
)

// BuildProblem maps a PlanInput onto a dense Problem and returns the
// LinkID→index mapping.
var BuildProblem = plan.Build

// RatesByLink maps a Solution's rates back to topology links.
var RatesByLink = plan.RatesByLink

// EffectiveRates computes per-pair deployed effective sampling rates of
// any per-link rate assignment under a rate model (nil = ModelLinear).
var EffectiveRates = plan.EffectiveRates

// SampledRate returns Σ p_i·U_i of a per-link assignment.
var SampledRate = plan.SampledRate

// Coordination surface: cSamp-style hash-range assignments that deploy
// a coordinated plan on the netflow substrate.
type (
	// Coordination is the full coordinated-deployment assignment built
	// from a solved plan (see plan.Coordinate).
	Coordination = plan.Coordination
	// PairAssignment is one OD pair's hash-space partition.
	PairAssignment = plan.PairAssignment
)

// Coordinate partitions each pair's flow-hash space among the monitors
// on its path, proportionally to their sampling effort.
var Coordinate = plan.Coordinate

// Continuation surface: solver workspaces reused across families of
// related instances (θ-sweeps, successive measurement intervals).
type (
	// Solver is a reusable compiled workspace for one problem structure;
	// SetBudget/SetLoads re-tune it between solves without revalidation
	// of the unchanged fields.
	Solver = core.Solver
	// CompiledPlan couples a built Problem with its compiled Solver and
	// the link bookkeeping, re-tunable via Retune.
	CompiledPlan = plan.Compiled
	// PlanCache memoizes CompiledPlan values by problem identity
	// (routing matrix, candidate set, rate model).
	PlanCache = plan.Cache
)

// NewSolver compiles a Problem into a reusable solver workspace.
var NewSolver = core.NewSolver

// WarmStart projects a previous optimum onto a new problem's feasible
// set, producing an Options.Initial that preserves the active set.
var WarmStart = core.WarmStart

// WarmStartRates is WarmStart for a bare rate vector.
var WarmStartRates = core.WarmStartRates

// CompilePlan builds and compiles a PlanInput into a CompiledPlan.
var CompilePlan = plan.Compile

// NewPlanCache returns an empty compiled-plan cache.
var NewPlanCache = plan.NewCache

// Scenario surface: the paper's GEANT evaluation setting.
type (
	// GEANTScenario is the synthetic GEANT-2004 evaluation scenario.
	GEANTScenario = geant.Scenario
)

// BuildGEANT constructs the synthetic GEANT scenario for a seed.
var BuildGEANT = geant.Build

// ECMP surface: equal-cost multipath routing with fractional matrix
// entries (see routing.BuildMatrixECMP).

// BuildRoutingMatrixECMP routes OD pairs over the full equal-cost DAG,
// producing fractional routing-matrix entries.
var BuildRoutingMatrixECMP = routing.BuildMatrixECMP

// LinkLoadsECMP accumulates per-link loads with equal-cost splitting.
var LinkLoadsECMP = traffic.LinkLoadsECMP

// Additional utility families (the paper's Section VI directions).
type (
	// Detection is the anomaly-detection utility 1-(1-ρ)^Size.
	Detection = core.Detection
	// LogCoverage is the proportional-fairness coverage utility.
	LogCoverage = core.LogCoverage
)

// NewDetection builds the anomaly-detection utility for events of the
// given packet footprint.
var NewDetection = core.NewDetection

// NewLogCoverage builds the log coverage utility with scale c.
var NewLogCoverage = core.NewLogCoverage

// Diurnal is a day-shaped traffic profile for multi-interval studies.
type Diurnal = traffic.Diurnal

// SolveMaxMinExact computes the certified max-min optimum by bisection
// over LP feasibility probes (see core.SolveMaxMinExact).
var SolveMaxMinExact = core.SolveMaxMinExact

// Inverter is implemented by utilities with a closed-form inverse.
type Inverter = core.Inverter

// Controller surface: continuous operation of the optimizer with load
// smoothing and activation hysteresis (internal/control).
type (
	// Controller re-optimizes per interval with churn suppression.
	Controller = control.Controller
	// ControllerOptions tunes the controller.
	ControllerOptions = control.Options
	// ControllerDecision is the per-interval output.
	ControllerDecision = control.Decision
)

// NewController builds a monitoring controller.
var NewController = control.New

// Robustness surface: confidence-bounded load tracking and robust
// solving (internal/loadtrack, core.SolveRobust, control robust mode).
type (
	// LoadTracker maintains per-link load confidence intervals from the
	// monitors' own sampled observations.
	LoadTracker = loadtrack.Tracker
	// LoadTrackerConfig tunes a LoadTracker.
	LoadTrackerConfig = loadtrack.Config
	// LoadTrackerState is a tracker's serializable snapshot.
	LoadTrackerState = loadtrack.State
	// RobustMode selects which edge of the load confidence envelope a
	// robust solve optimizes against.
	RobustMode = core.RobustMode
	// RobustControllerOptions configures a controller's uncertainty-aware
	// operation (posture, exploration reserve, confidence widening).
	RobustControllerOptions = control.RobustOptions
)

// Robust solving postures.
const (
	RobustOff         = core.RobustOff
	RobustPessimistic = core.RobustPessimistic
	RobustOptimistic  = core.RobustOptimistic
)

// RobustModeByName resolves "off", "pessimistic" or "optimistic".
var RobustModeByName = core.RobustModeByName

// NewLoadTracker builds a confidence-interval load tracker.
var NewLoadTracker = loadtrack.New

// SolveRobust solves against one edge of a load confidence envelope.
var SolveRobust = core.SolveRobust

// Internet-scale surface: sparse CSR problems, sharded kernels, the
// Frank-Wolfe approximation with its duality-gap certificate, and the
// deterministic ISP-like topology generator (internal/topology,
// core CSR/shard/approx, plan.BuildScale).
type (
	// CSRProblem is a sampling problem in compressed sparse row form —
	// the scale-tier front door that never materializes a dense
	// pair×link intermediate.
	CSRProblem = core.CSRProblem
	// ApproxOptions tunes SolveApprox, the Frank-Wolfe approximation
	// with a certified duality gap (Solver.SolveApprox /
	// Solver.SolveApproxInto; see also Solver.Shard).
	ApproxOptions = core.ApproxOptions
	// ControllerApproxPolicy is the controller's deadline-aware routing
	// between the exact and approximate solvers.
	ControllerApproxPolicy = control.ApproxPolicy
	// WorkerPool is a persistent worker pool for sharded solver kernels
	// (attach with Solver.Shard; results stay bit-identical at any
	// worker count).
	WorkerPool = engine.Pool
	// WorkerPoolPanicError reports a panic captured inside a pool loop.
	WorkerPoolPanicError = engine.PoolPanicError
	// TopologyGenConfig parameterizes the deterministic hierarchical
	// ISP-like topology generator tier by tier.
	TopologyGenConfig = topology.GenConfig
	// TopologyScaleConfig is the size-first generator configuration
	// (target link count; tiers derived).
	TopologyScaleConfig = topology.ScaleConfig
	// ScaleInstance is one generated instance: graph, loads and the
	// routing incidence already in CSR form.
	ScaleInstance = topology.ScaleInstance
)

// NewSolverCSR compiles a CSRProblem into a reusable Solver.
var NewSolverCSR = core.NewSolverCSR

// NewWorkerPool builds a persistent worker pool (workers <= 0 selects
// GOMAXPROCS).
var NewWorkerPool = engine.NewPool

// GenerateTopology builds a deterministic hierarchical instance from an
// explicit tier configuration.
var GenerateTopology = topology.Generate

// GenerateScaleTopology builds an instance sized to a target link count.
var GenerateScaleTopology = topology.GenerateScale

// BuildScaleProblem maps a generated ScaleInstance onto a CSRProblem.
var BuildScaleProblem = plan.BuildScale
