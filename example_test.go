package netsamp_test

import (
	"fmt"
	"sort"

	"netsamp"
)

// ExampleSolve states and solves a two-link sampling problem directly.
func ExampleSolve() {
	u, _ := netsamp.NewSRE(1.0 / 6000) // an OD pair of 6000 packets per interval
	prob := &netsamp.Problem{
		Loads:  []float64{40000, 2000}, // pkt/s on the two candidate links
		Budget: netsamp.BudgetPerInterval(30000, 300),
		Pairs: []netsamp.Pair{
			{Name: "small-od", Links: []int{1}, Utility: u},
			{Name: "big-od", Links: []int{0}, Utility: mustSRE(1.0 / 9000000)},
		},
	}
	sol, err := netsamp.Solve(prob, netsamp.Options{})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("converged=%v monitors=%d\n", sol.Stats.Converged, len(sol.ActiveMonitors()))
	fmt.Printf("small OD sampled at %.4f on the light link\n", sol.Rates[1])
	// Output:
	// converged=true monitors=2
	// small OD sampled at 0.0448 on the light link
}

// ExampleNewSRE shows the utility the optimizer maximizes.
func ExampleNewSRE() {
	u, _ := netsamp.NewSRE(1.0 / 6000)
	fmt.Printf("M(0)      = %.3f\n", u.Value(0))
	fmt.Printf("M(1%%)     = %.3f\n", u.Value(0.01))
	fmt.Printf("M(100%%)   = %.3f\n", u.Value(1))
	// Output:
	// M(0)      = 0.000
	// M(1%)     = 0.983
	// M(100%)   = 1.000
}

// ExampleBuildProblem walks the topology-to-plan bridge on a tiny net.
func ExampleBuildProblem() {
	g := netsamp.NewGraph()
	a, b := g.AddNode("A"), g.AddNode("B")
	ab, _ := g.AddDuplex(a, b, netsamp.OC48, 10)
	tbl := netsamp.ComputeRouting(g)
	pairs := []netsamp.ODPair{{Name: "A->B", Src: a, Dst: b}}
	m, _ := netsamp.BuildRoutingMatrix(tbl, pairs)
	demands := &netsamp.TrafficMatrix{Demands: []netsamp.Demand{{Pair: pairs[0], Rate: 1000}}}
	loads, _ := netsamp.LinkLoads(g, tbl, demands)
	prob, _, _ := netsamp.BuildProblem(netsamp.PlanInput{
		Matrix:       m,
		Loads:        loads,
		Candidates:   []netsamp.LinkID{ab},
		InvMeanSizes: []float64{1.0 / (1000 * 300)},
		Budget:       netsamp.BudgetPerInterval(3000, 300),
	})
	sol, _ := netsamp.Solve(prob, netsamp.Options{})
	rates := netsamp.RatesByLink(sol, []netsamp.LinkID{ab})
	var links []netsamp.LinkID
	for lid := range rates {
		links = append(links, lid)
	}
	sort.Slice(links, func(i, j int) bool { return links[i] < links[j] })
	for _, lid := range links {
		fmt.Printf("%s p=%.3f\n", g.LinkName(lid), rates[lid])
	}
	// Output:
	// A->B p=0.010
}

func mustSRE(c float64) *netsamp.SRE {
	u, err := netsamp.NewSRE(c)
	if err != nil {
		panic(err)
	}
	return u
}
