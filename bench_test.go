package netsamp_test

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (see DESIGN.md section 4 for the experiment index), plus
// ablation benchmarks for the design choices the solver makes
// (preconditioning, Polak-Ribière blending, Newton line search, the
// effective-rate approximation (7) versus the exact model (1)).
//
// Run with:
//
//	go test -bench=. -benchmem .

import (
	"context"
	"sync"
	"testing"

	"netsamp/internal/baseline"
	"netsamp/internal/control"
	"netsamp/internal/core"
	"netsamp/internal/eval"
	"netsamp/internal/geant"
	"netsamp/internal/plan"
	"netsamp/internal/rng"
	"netsamp/internal/topology"
)

var (
	scenarioOnce sync.Once
	scenarioVal  *geant.Scenario
)

// benchScenario returns a cached GEANT scenario (construction cost is
// excluded from every benchmark).
func benchScenario(b *testing.B) *geant.Scenario {
	b.Helper()
	scenarioOnce.Do(func() { scenarioVal = geant.MustBuild(1) })
	return scenarioVal
}

func benchProblem(b *testing.B, s *geant.Scenario, model core.RateModel) *core.Problem {
	b.Helper()
	prob, _, err := plan.Build(plan.Input{
		Matrix:       s.Matrix,
		Loads:        s.Loads,
		Candidates:   s.MonitorLinks,
		InvMeanSizes: s.UtilityParams(eval.Interval),
		Budget:       core.BudgetPerInterval(100000, eval.Interval),
		Model:        model,
	})
	if err != nil {
		b.Fatal(err)
	}
	return prob
}

// BenchmarkFigure1Utility regenerates the Figure 1 utility curves.
func BenchmarkFigure1Utility(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := eval.Figure1(101)
		if len(r.Points) != 101 {
			b.Fatal("bad figure")
		}
	}
}

// BenchmarkTable1Optimization solves the Table I instance (the JANET
// task at θ = 100,000 packets per 5-minute interval) through the
// one-shot path: every call re-validates, re-compiles and allocates.
func BenchmarkTable1Optimization(b *testing.B) {
	prob := benchProblem(b, benchScenario(b), nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := core.Solve(prob, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if !sol.Stats.Converged {
			b.Fatal("did not converge")
		}
	}
}

// BenchmarkSolveReuse solves the same instance through a compiled
// Solver reusing one Solution — the steady state of a controller
// re-optimizing every interval. Steady-state iterations allocate
// nothing (pinned by TestSolveIntoZeroAllocs).
func BenchmarkSolveReuse(b *testing.B) {
	prob := benchProblem(b, benchScenario(b), nil)
	s, err := core.NewSolver(prob)
	if err != nil {
		b.Fatal(err)
	}
	var sol core.Solution
	if err := s.SolveInto(&sol, core.Options{}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.SolveInto(&sol, core.Options{}); err != nil {
			b.Fatal(err)
		}
		if !sol.Stats.Converged {
			b.Fatal("did not converge")
		}
	}
}

// BenchmarkTable1WithSimulation regenerates the full Table I including
// the 20 sampling experiments per OD pair.
func BenchmarkTable1WithSimulation(b *testing.B) {
	s := benchScenario(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Table1(s, 100000, 20, 42); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2Sweep regenerates a Figure 2 sweep (optimal vs
// UK-links-only across the θ range, 5 sampling trials per point) on a
// single worker — the sequential baseline for BenchmarkFigure2Parallel.
func BenchmarkFigure2Sweep(b *testing.B) {
	s := benchScenario(b)
	thetas := eval.DefaultThetas()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Figure2Ctx(context.Background(), s, thetas, 5, 3, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2Parallel runs the same sweep on the engine's full
// worker pool (one worker per CPU). The result is byte-identical to the
// sequential run; only the wall-clock changes.
func BenchmarkFigure2Parallel(b *testing.B) {
	s := benchScenario(b)
	thetas := eval.DefaultThetas()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Figure2Ctx(context.Background(), s, thetas, 5, 3, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConvergenceStudy runs the Section IV-D randomized-instance
// study (20 instances per iteration) on a single worker — the sequential
// baseline for BenchmarkConvergenceStudyParallel.
func BenchmarkConvergenceStudy(b *testing.B) {
	s := benchScenario(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.ConvergenceStudyCtx(context.Background(), s, 20, 11, core.Options{}, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConvergenceStudyParallel runs the same study on the engine's
// full worker pool.
func BenchmarkConvergenceStudyParallel(b *testing.B) {
	s := benchScenario(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.ConvergenceStudyCtx(context.Background(), s, 20, 11, core.Options{}, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAccessLinkComparison runs the Section V-C capacity
// comparison.
func BenchmarkAccessLinkComparison(b *testing.B) {
	s := benchScenario(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.AccessLinkComparison(s, 100000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMaxMinExtension runs the max-min variant (the alternative
// objective the paper defers to future work).
func BenchmarkMaxMinExtension(b *testing.B) {
	prob := benchProblem(b, benchScenario(b), nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SolveMaxMin(prob, core.MaxMinOptions{Rounds: 10}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTwoPhaseGreedyBaseline runs the decoupled placement-then-
// rates heuristic for comparison with the joint optimization.
func BenchmarkTwoPhaseGreedyBaseline(b *testing.B) {
	s := benchScenario(b)
	budget := core.BudgetPerInterval(100000, eval.Interval)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := baseline.TwoPhaseGreedy(s.Matrix, s.Loads, s.MonitorLinks, s.Rates, budget, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations: solver design choices --------------------------------

func benchAblation(b *testing.B, opt core.Options) {
	prob := benchProblem(b, benchScenario(b), nil)
	b.ResetTimer()
	iters := 0
	for i := 0; i < b.N; i++ {
		sol, err := core.Solve(prob, opt)
		if err != nil {
			b.Fatal(err)
		}
		iters += sol.Stats.Iterations
	}
	b.ReportMetric(float64(iters)/float64(b.N), "iterations/op")
}

// BenchmarkAblationFullSolver is the reference configuration.
func BenchmarkAblationFullSolver(b *testing.B) {
	benchAblation(b, core.Options{})
}

// BenchmarkAblationNoPreconditioner disables the 1/U² metric (the
// paper's plain gradient projection; zig-zags on skewed loads).
func BenchmarkAblationNoPreconditioner(b *testing.B) {
	benchAblation(b, core.Options{DisablePreconditioner: true})
}

// BenchmarkAblationNoPolakRibiere disables conjugate blending.
func BenchmarkAblationNoPolakRibiere(b *testing.B) {
	benchAblation(b, core.Options{DisablePolakRibiere: true})
}

// BenchmarkAblationBisectionLineSearch replaces Newton's method with
// bisection in the one-dimensional search.
func BenchmarkAblationBisectionLineSearch(b *testing.B) {
	benchAblation(b, core.Options{DisableNewton: true})
}

// BenchmarkAblationNoSecondOrder disables the Newton-KKT step on the
// free subspace (pure first-order projected search, the paper's method;
// an order of magnitude more iterations near the optimum).
func BenchmarkAblationNoSecondOrder(b *testing.B) {
	benchAblation(b, core.Options{DisableSecondOrder: true})
}

// BenchmarkAblationExactRateModel solves with the exact effective-rate
// model (1) instead of approximation (7).
func BenchmarkAblationExactRateModel(b *testing.B) {
	prob := benchProblem(b, benchScenario(b), core.ModelIndependentExact)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Solve(prob, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationCoordinatedModel solves under the coordinated
// (cSamp-style) rate model — bitwise the linear trajectory — and
// reports the mean per-pair coverage the coordinated deployment
// recovers over independent sampling at the same per-link rates.
func BenchmarkAblationCoordinatedModel(b *testing.B) {
	s := benchScenario(b)
	prob := benchProblem(b, s, core.ModelCoordinated)
	var sol *core.Solution
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		if sol, err = core.Solve(prob, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	rates := plan.RatesByLink(sol, s.MonitorLinks)
	indep := plan.EffectiveRates(s.Matrix, rates, core.ModelIndependentExact)
	coord := plan.EffectiveRates(s.Matrix, rates, core.ModelCoordinated)
	gain := 0.0
	for k := range indep {
		gain += coord[k] - indep[k]
	}
	b.ReportMetric(gain/float64(len(indep)), "coord-gain")
}

// BenchmarkDynamicStudy runs the static-vs-reoptimized study (6
// intervals per iteration).
func BenchmarkDynamicStudy(b *testing.B) {
	s := benchScenario(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.DynamicStudy(s, 6, 100000, 21); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDetectionStudy runs the anomaly-detection placement.
func BenchmarkDetectionStudy(b *testing.B) {
	s := benchScenario(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.DetectionStudy(s, 100000, 500); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMaxMinExact runs the certified LP-bisection max-min solver
// on the Table I instance.
func BenchmarkMaxMinExact(b *testing.B) {
	prob := benchProblem(b, benchScenario(b), nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SolveMaxMinExact(prob, 1e-9); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTMStudy runs the traffic-matrix estimation comparison
// (gravity / tomogravity / sampled).
func BenchmarkTMStudy(b *testing.B) {
	s := benchScenario(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.TMStudy(s, 100000, 5, 5); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Warm-start continuation -----------------------------------------
//
// The pairs below measure the same work through the one-shot path
// (Build + Solve per instance, cold waterfilling start) and the
// continuation path (Compile once, Retune + WarmStart per instance).
// Both report the total solver iterations per op, which is where the
// warm start earns its speedup.

// figure2SolveSequence enumerates the Figure 2 instance family: both
// candidate-set variants across the θ grid, each variant's grid ordered
// top-down (the direction the continuation chains in Figure2Ctx run:
// shrinking the budget rescales the previous optimum without disturbing
// its active set). The cold benchmark solves the same set; its order is
// irrelevant.
func figure2SolveSequence(s *geant.Scenario) []plan.Input {
	inv := s.UtilityParams(eval.Interval)
	thetas := eval.DefaultThetas()
	var seq []plan.Input
	for _, cands := range [][]topology.LinkID{s.MonitorLinks, s.UKLinks} {
		for i := len(thetas) - 1; i >= 0; i-- {
			seq = append(seq, plan.Input{
				Matrix:       s.Matrix,
				Loads:        s.Loads,
				Candidates:   cands,
				InvMeanSizes: inv,
				Budget:       core.BudgetPerInterval(thetas[i], eval.Interval),
			})
		}
	}
	return seq
}

// BenchmarkFigure2ColdSolves solves the Figure 2 θ-sweep the pre-
// continuation way: every grid point rebuilds its problem and starts
// the solver from the cold waterfilling point.
func BenchmarkFigure2ColdSolves(b *testing.B) {
	seq := figure2SolveSequence(benchScenario(b))
	b.ReportAllocs()
	b.ResetTimer()
	iters := 0
	for i := 0; i < b.N; i++ {
		for _, in := range seq {
			prob, _, err := plan.Build(in)
			if err != nil {
				b.Fatal(err)
			}
			sol, err := core.Solve(prob, core.Options{})
			if err != nil {
				b.Fatal(err)
			}
			iters += sol.Stats.Iterations
		}
	}
	b.ReportMetric(float64(iters)/float64(b.N), "solver-iters/op")
}

// BenchmarkFigure2WarmStart solves the same sweep as continuation
// chains: one compiled workspace per candidate-set variant, budget
// re-tuned between grid points, every solve warm-started from the
// previous θ's optimum.
func BenchmarkFigure2WarmStart(b *testing.B) {
	s := benchScenario(b)
	seq := figure2SolveSequence(s)
	nThetas := len(eval.DefaultThetas())
	b.ReportAllocs()
	b.ResetTimer()
	iters := 0
	for i := 0; i < b.N; i++ {
		var (
			comp *plan.Compiled
			sol  core.Solution
			warm []float64
		)
		for j, in := range seq {
			var err error
			if j%nThetas == 0 { // new candidate-set variant: new chain
				if comp, err = plan.Compile(in); err != nil {
					b.Fatal(err)
				}
			} else if err = comp.Retune(in); err != nil {
				b.Fatal(err)
			}
			opt := core.Options{}
			if j%nThetas != 0 {
				if warm, err = comp.Solver().WarmStart(&sol, warm); err != nil {
					b.Fatal(err)
				}
				opt.Initial = warm
			}
			if err := comp.Solver().SolveInto(&sol, opt); err != nil {
				b.Fatal(err)
			}
			iters += sol.Stats.Iterations
		}
	}
	b.ReportMetric(float64(iters)/float64(b.N), "solver-iters/op")
}

// dynamicLoadSchedule jitters the scenario loads over `n` successive
// intervals (±10%, deterministic), the per-interval re-optimization
// input of the dynamic study and the controller.
func dynamicLoadSchedule(s *geant.Scenario, n int) [][]float64 {
	r := rng.New(97)
	out := make([][]float64, n)
	for t := range out {
		loads := make([]float64, len(s.Loads))
		for i, u := range s.Loads {
			loads[i] = u * (0.9 + 0.2*r.Float64())
		}
		out[t] = loads
	}
	return out
}

const benchIntervals = 8

// BenchmarkDynamicIntervalCold re-optimizes 8 successive intervals the
// pre-continuation way: rebuild and cold-solve each interval.
func BenchmarkDynamicIntervalCold(b *testing.B) {
	s := benchScenario(b)
	schedule := dynamicLoadSchedule(s, benchIntervals)
	inv := s.UtilityParams(eval.Interval)
	budget := core.BudgetPerInterval(100000, eval.Interval)
	b.ReportAllocs()
	b.ResetTimer()
	iters := 0
	for i := 0; i < b.N; i++ {
		for _, loads := range schedule {
			prob, _, err := plan.Build(plan.Input{
				Matrix:       s.Matrix,
				Loads:        loads,
				Candidates:   s.MonitorLinks,
				InvMeanSizes: inv,
				Budget:       budget,
			})
			if err != nil {
				b.Fatal(err)
			}
			sol, err := core.Solve(prob, core.Options{})
			if err != nil {
				b.Fatal(err)
			}
			iters += sol.Stats.Iterations
		}
	}
	b.ReportMetric(float64(iters)/float64(b.N), "solver-iters/op")
}

// BenchmarkDynamicIntervalWarm re-optimizes the same 8 intervals as one
// continuation chain: the compiled workspace re-tunes to each interval's
// loads and warm-starts from the previous interval's plan.
func BenchmarkDynamicIntervalWarm(b *testing.B) {
	s := benchScenario(b)
	schedule := dynamicLoadSchedule(s, benchIntervals)
	inv := s.UtilityParams(eval.Interval)
	budget := core.BudgetPerInterval(100000, eval.Interval)
	b.ReportAllocs()
	b.ResetTimer()
	iters := 0
	for i := 0; i < b.N; i++ {
		var (
			comp *plan.Compiled
			sol  core.Solution
			warm []float64
		)
		for t, loads := range schedule {
			in := plan.Input{
				Matrix:       s.Matrix,
				Loads:        loads,
				Candidates:   s.MonitorLinks,
				InvMeanSizes: inv,
				Budget:       budget,
			}
			var err error
			if comp == nil {
				if comp, err = plan.Compile(in); err != nil {
					b.Fatal(err)
				}
			} else if err = comp.Retune(in); err != nil {
				b.Fatal(err)
			}
			opt := core.Options{}
			if t > 0 {
				if warm, err = comp.Solver().WarmStart(&sol, warm); err != nil {
					b.Fatal(err)
				}
				opt.Initial = warm
			}
			if err := comp.Solver().SolveInto(&sol, opt); err != nil {
				b.Fatal(err)
			}
			iters += sol.Stats.Iterations
		}
	}
	b.ReportMetric(float64(iters)/float64(b.N), "solver-iters/op")
}

// BenchmarkSolveRobust solves the Table I instance against the upper
// edge of a ±20% load confidence envelope — the per-interval price of
// the pessimistic posture relative to BenchmarkTable1Optimization.
func BenchmarkSolveRobust(b *testing.B) {
	prob := benchProblem(b, benchScenario(b), nil)
	lower := make([]float64, len(prob.Loads))
	upper := make([]float64, len(prob.Loads))
	for i, u := range prob.Loads {
		lower[i] = 0.8 * u
		upper[i] = 1.2 * u
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := core.SolveRobust(prob, core.RobustPessimistic, lower, upper, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if !sol.Stats.Converged {
			b.Fatal("did not converge")
		}
	}
}

// BenchmarkRobustControllerSteps drives an uncertainty-aware controller
// through 8 successive intervals: load tracking, the robust envelope
// solve and the exploration reserve, per interval.
func BenchmarkRobustControllerSteps(b *testing.B) {
	s := benchScenario(b)
	schedule := dynamicLoadSchedule(s, benchIntervals)
	inv := s.UtilityParams(eval.Interval)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctl, err := control.New(control.Options{
			Budget:      core.BudgetPerInterval(100000, eval.Interval),
			SmoothAlpha: 0.5,
			Robust: control.RobustOptions{
				Mode:            core.RobustPessimistic,
				ExplorationFrac: 0.1,
				WidenFactor:     1.3,
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, loads := range schedule {
			if _, err := ctl.StepResilient(context.Background(), control.StepInput{
				Matrix:     s.Matrix,
				Loads:      loads,
				Candidates: s.MonitorLinks,
				InvSizes:   inv,
				Workers:    1,
			}); err != nil {
				b.Fatal(err)
			}
		}
	}
}
