package netsamp_test

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (see DESIGN.md section 4 for the experiment index), plus
// ablation benchmarks for the design choices the solver makes
// (preconditioning, Polak-Ribière blending, Newton line search, the
// effective-rate approximation (7) versus the exact model (1)).
//
// Run with:
//
//	go test -bench=. -benchmem .

import (
	"context"
	"sync"
	"testing"

	"netsamp/internal/baseline"
	"netsamp/internal/core"
	"netsamp/internal/eval"
	"netsamp/internal/geant"
	"netsamp/internal/plan"
)

var (
	scenarioOnce sync.Once
	scenarioVal  *geant.Scenario
)

// benchScenario returns a cached GEANT scenario (construction cost is
// excluded from every benchmark).
func benchScenario(b *testing.B) *geant.Scenario {
	b.Helper()
	scenarioOnce.Do(func() { scenarioVal = geant.MustBuild(1) })
	return scenarioVal
}

func benchProblem(b *testing.B, s *geant.Scenario, exact bool) *core.Problem {
	b.Helper()
	prob, _, err := plan.Build(plan.Input{
		Matrix:       s.Matrix,
		Loads:        s.Loads,
		Candidates:   s.MonitorLinks,
		InvMeanSizes: s.UtilityParams(eval.Interval),
		Budget:       core.BudgetPerInterval(100000, eval.Interval),
		Exact:        exact,
	})
	if err != nil {
		b.Fatal(err)
	}
	return prob
}

// BenchmarkFigure1Utility regenerates the Figure 1 utility curves.
func BenchmarkFigure1Utility(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := eval.Figure1(101)
		if len(r.Points) != 101 {
			b.Fatal("bad figure")
		}
	}
}

// BenchmarkTable1Optimization solves the Table I instance (the JANET
// task at θ = 100,000 packets per 5-minute interval) through the
// one-shot path: every call re-validates, re-compiles and allocates.
func BenchmarkTable1Optimization(b *testing.B) {
	prob := benchProblem(b, benchScenario(b), false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := core.Solve(prob, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if !sol.Stats.Converged {
			b.Fatal("did not converge")
		}
	}
}

// BenchmarkSolveReuse solves the same instance through a compiled
// Solver reusing one Solution — the steady state of a controller
// re-optimizing every interval. Steady-state iterations allocate
// nothing (pinned by TestSolveIntoZeroAllocs).
func BenchmarkSolveReuse(b *testing.B) {
	prob := benchProblem(b, benchScenario(b), false)
	s, err := core.NewSolver(prob)
	if err != nil {
		b.Fatal(err)
	}
	var sol core.Solution
	if err := s.SolveInto(&sol, core.Options{}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.SolveInto(&sol, core.Options{}); err != nil {
			b.Fatal(err)
		}
		if !sol.Stats.Converged {
			b.Fatal("did not converge")
		}
	}
}

// BenchmarkTable1WithSimulation regenerates the full Table I including
// the 20 sampling experiments per OD pair.
func BenchmarkTable1WithSimulation(b *testing.B) {
	s := benchScenario(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Table1(s, 100000, 20, 42); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2Sweep regenerates a Figure 2 sweep (optimal vs
// UK-links-only across the θ range, 5 sampling trials per point) on a
// single worker — the sequential baseline for BenchmarkFigure2Parallel.
func BenchmarkFigure2Sweep(b *testing.B) {
	s := benchScenario(b)
	thetas := eval.DefaultThetas()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Figure2Ctx(context.Background(), s, thetas, 5, 3, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2Parallel runs the same sweep on the engine's full
// worker pool (one worker per CPU). The result is byte-identical to the
// sequential run; only the wall-clock changes.
func BenchmarkFigure2Parallel(b *testing.B) {
	s := benchScenario(b)
	thetas := eval.DefaultThetas()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Figure2Ctx(context.Background(), s, thetas, 5, 3, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConvergenceStudy runs the Section IV-D randomized-instance
// study (20 instances per iteration) on a single worker — the sequential
// baseline for BenchmarkConvergenceStudyParallel.
func BenchmarkConvergenceStudy(b *testing.B) {
	s := benchScenario(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.ConvergenceStudyCtx(context.Background(), s, 20, 11, core.Options{}, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConvergenceStudyParallel runs the same study on the engine's
// full worker pool.
func BenchmarkConvergenceStudyParallel(b *testing.B) {
	s := benchScenario(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.ConvergenceStudyCtx(context.Background(), s, 20, 11, core.Options{}, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAccessLinkComparison runs the Section V-C capacity
// comparison.
func BenchmarkAccessLinkComparison(b *testing.B) {
	s := benchScenario(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.AccessLinkComparison(s, 100000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMaxMinExtension runs the max-min variant (the alternative
// objective the paper defers to future work).
func BenchmarkMaxMinExtension(b *testing.B) {
	prob := benchProblem(b, benchScenario(b), false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SolveMaxMin(prob, core.MaxMinOptions{Rounds: 10}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTwoPhaseGreedyBaseline runs the decoupled placement-then-
// rates heuristic for comparison with the joint optimization.
func BenchmarkTwoPhaseGreedyBaseline(b *testing.B) {
	s := benchScenario(b)
	budget := core.BudgetPerInterval(100000, eval.Interval)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := baseline.TwoPhaseGreedy(s.Matrix, s.Loads, s.MonitorLinks, s.Rates, budget, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations: solver design choices --------------------------------

func benchAblation(b *testing.B, opt core.Options) {
	prob := benchProblem(b, benchScenario(b), false)
	b.ResetTimer()
	iters := 0
	for i := 0; i < b.N; i++ {
		sol, err := core.Solve(prob, opt)
		if err != nil {
			b.Fatal(err)
		}
		iters += sol.Stats.Iterations
	}
	b.ReportMetric(float64(iters)/float64(b.N), "iterations/op")
}

// BenchmarkAblationFullSolver is the reference configuration.
func BenchmarkAblationFullSolver(b *testing.B) {
	benchAblation(b, core.Options{})
}

// BenchmarkAblationNoPreconditioner disables the 1/U² metric (the
// paper's plain gradient projection; zig-zags on skewed loads).
func BenchmarkAblationNoPreconditioner(b *testing.B) {
	benchAblation(b, core.Options{DisablePreconditioner: true})
}

// BenchmarkAblationNoPolakRibiere disables conjugate blending.
func BenchmarkAblationNoPolakRibiere(b *testing.B) {
	benchAblation(b, core.Options{DisablePolakRibiere: true})
}

// BenchmarkAblationBisectionLineSearch replaces Newton's method with
// bisection in the one-dimensional search.
func BenchmarkAblationBisectionLineSearch(b *testing.B) {
	benchAblation(b, core.Options{DisableNewton: true})
}

// BenchmarkAblationExactRateModel solves with the exact effective-rate
// model (1) instead of approximation (7).
func BenchmarkAblationExactRateModel(b *testing.B) {
	prob := benchProblem(b, benchScenario(b), true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Solve(prob, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDynamicStudy runs the static-vs-reoptimized study (6
// intervals per iteration).
func BenchmarkDynamicStudy(b *testing.B) {
	s := benchScenario(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.DynamicStudy(s, 6, 100000, 21); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDetectionStudy runs the anomaly-detection placement.
func BenchmarkDetectionStudy(b *testing.B) {
	s := benchScenario(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.DetectionStudy(s, 100000, 500); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMaxMinExact runs the certified LP-bisection max-min solver
// on the Table I instance.
func BenchmarkMaxMinExact(b *testing.B) {
	prob := benchProblem(b, benchScenario(b), false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SolveMaxMinExact(prob, 1e-9); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTMStudy runs the traffic-matrix estimation comparison
// (gravity / tomogravity / sampled).
func BenchmarkTMStudy(b *testing.B) {
	s := benchScenario(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.TMStudy(s, 100000, 5, 5); err != nil {
			b.Fatal(err)
		}
	}
}
