package netsamp_test

import (
	"math"
	"testing"

	"netsamp"
)

// TestFacadeWorkflow exercises the documented public workflow end to end
// on a small topology: build, route, load, optimize, map back.
func TestFacadeWorkflow(t *testing.T) {
	g := netsamp.NewGraph()
	a := g.AddNode("A")
	b := g.AddNode("B")
	c := g.AddNode("C")
	ab, _ := g.AddDuplex(a, b, netsamp.OC48, 10)
	bc, _ := g.AddDuplex(b, c, netsamp.OC12, 10)

	tbl := netsamp.ComputeRouting(g)
	pairs := []netsamp.ODPair{
		{Name: "A->C", Src: a, Dst: c},
		{Name: "B->C", Src: b, Dst: c},
	}
	m, err := netsamp.BuildRoutingMatrix(tbl, pairs)
	if err != nil {
		t.Fatal(err)
	}
	demands := &netsamp.TrafficMatrix{Demands: []netsamp.Demand{
		{Pair: pairs[0], Rate: 4000},
		{Pair: pairs[1], Rate: 1000},
	}}
	loads, err := netsamp.LinkLoads(g, tbl, demands)
	if err != nil {
		t.Fatal(err)
	}
	candidates := []netsamp.LinkID{ab, bc}
	prob, index, err := netsamp.BuildProblem(netsamp.PlanInput{
		Matrix:       m,
		Loads:        loads,
		Candidates:   candidates,
		InvMeanSizes: []float64{1.0 / (4000 * 300), 1.0 / (1000 * 300)},
		Budget:       netsamp.BudgetPerInterval(10000, 300),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(index) != 2 {
		t.Fatalf("index = %v", index)
	}
	sol, err := netsamp.Solve(prob, netsamp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Stats.Converged {
		t.Fatal("facade workflow did not converge")
	}
	rates := netsamp.RatesByLink(sol, candidates)
	if got := netsamp.SampledRate(rates, loads); math.Abs(got-10000.0/300) > 1e-6 {
		t.Fatalf("sampled rate = %v", got)
	}
	rho := netsamp.EffectiveRates(m, rates, nil)
	for k, r := range rho {
		if r <= 0 {
			t.Fatalf("pair %d unmonitored", k)
		}
		if math.Abs(r-sol.Rho[k]) > 1e-12 {
			t.Fatalf("facade rho mismatch: %v vs %v", r, sol.Rho[k])
		}
	}
}

func TestFacadeSRE(t *testing.T) {
	u, err := netsamp.NewSRE(0.002)
	if err != nil {
		t.Fatal(err)
	}
	if u.Value(0) != 0 || u.Value(1) <= 0.99 {
		t.Fatalf("SRE endpoints: %v, %v", u.Value(0), u.Value(1))
	}
}

func TestFacadeGEANT(t *testing.T) {
	s, err := netsamp.BuildGEANT(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Pairs) != 20 {
		t.Fatalf("pairs = %d", len(s.Pairs))
	}
}

func TestFacadeMaxMin(t *testing.T) {
	prob := &netsamp.Problem{
		Loads:  []float64{100, 10000},
		Budget: 20,
	}
	u1, _ := netsamp.NewSRE(0.001)
	u2, _ := netsamp.NewSRE(0.001)
	prob.Pairs = []netsamp.Pair{
		{Name: "a", Links: []int{0}, Utility: u1},
		{Name: "b", Links: []int{1}, Utility: u2},
	}
	sol, err := netsamp.SolveMaxMin(prob, netsamp.MaxMinOptions{Rounds: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Rates) != 2 {
		t.Fatalf("rates = %v", sol.Rates)
	}
}
