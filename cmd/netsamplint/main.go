// Command netsamplint is netsamp's multichecker: it runs the
// internal/analyzers suite (determinism, noalloc, codecpair, floatcmp,
// stickyerr) over Go packages and reports invariant violations.
//
// Two modes share the same analyzers and type information:
//
//	netsamplint [-json] [packages...]
//	    Standalone: loads the named packages (default ./...) through
//	    `go list -export`, analyzes them, prints findings, exits 2 when
//	    any are found. -json emits the LINT_BASELINE.json format.
//
//	go vet -vettool=$(which netsamplint) ./...
//	    Vet tool: the go command invokes the binary once per package
//	    with a JSON config file (the unitchecker protocol: -V=full for
//	    the tool's version fingerprint, -flags for its flag set, then
//	    <pkg>.cfg), and netsamplint typechecks from the supplied export
//	    data and analyzes just that package.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"netsamp/internal/analyzers"
)

func main() {
	// The go command probes vet tools before use: -V=full must print a
	// version fingerprint, -flags the supported analyzer flags.
	if len(os.Args) == 2 && os.Args[1] == "-V=full" {
		printVersion()
		return
	}
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		fmt.Println("[]")
		return
	}
	if len(os.Args) == 2 && strings.HasSuffix(os.Args[1], ".cfg") {
		os.Exit(unitcheck(os.Args[1]))
	}

	jsonOut := flag.Bool("json", false, "emit findings as JSON (the committed baseline format)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: netsamplint [-json] [packages...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	os.Exit(standalone(patterns, *jsonOut))
}

// printVersion emits the fingerprint line the go command caches vet
// results under; it must change whenever the binary changes, so it
// hashes the executable.
func printVersion() {
	h := sha256.New()
	if f, err := os.Open(os.Args[0]); err == nil {
		io.Copy(h, f) //nolint:errcheck // a partial hash only weakens caching
		f.Close()
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", os.Args[0], h.Sum(nil)[:8])
}

// baseline is the LINT_BASELINE.json schema: the committed artifact
// future PRs diff their own run against.
type baseline struct {
	Tool      string                 `json:"tool"`
	Analyzers []string               `json:"analyzers"`
	Packages  int                    `json:"packages_analyzed"`
	Findings  []analyzers.Diagnostic `json:"findings"`
}

func standalone(patterns []string, jsonOut bool) int {
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	pkgs, err := analyzers.LoadPackages(dir, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	suite := analyzers.All()
	diags, err := analyzers.RunAnalyzers(pkgs, suite)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if jsonOut {
		if diags == nil {
			diags = []analyzers.Diagnostic{} // a clean run baselines as [], not null
		}
		names := make([]string, len(suite))
		for i, a := range suite {
			names[i] = a.Name
		}
		out, err := json.MarshalIndent(baseline{
			Tool:      "netsamplint",
			Analyzers: names,
			Packages:  len(pkgs),
			Findings:  diags,
		}, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Println(string(out))
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !jsonOut {
			fmt.Fprintf(os.Stderr, "netsamplint: %d finding(s)\n", len(diags))
		}
		return 2
	}
	return 0
}

// vetConfig is the JSON the go command writes for a vet tool (the
// unitchecker protocol's per-package config).
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	ImportMap    map[string]string
	PackageFile  map[string]string
	VetxOnly     bool
	VetxOutput   string
	Standard     map[string]bool
	GoVersion    string
	NonGoFiles   []string
	IgnoredFiles []string

	SucceedOnTypecheckFailure bool
}

func unitcheck(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "netsamplint: parse %s: %v\n", cfgPath, err)
		return 1
	}
	// The go command demands the facts file exist even when empty.
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			os.WriteFile(cfg.VetxOutput, nil, 0o666) //nolint:errcheck // vet surfaces the missing file itself
		}
	}
	// Dependencies are visited for facts only; this suite exports none.
	// Test variants (pkg.test, "pkg [pkg.test]", pkg_test) are skipped:
	// the invariants govern shipped code, and the bitwise replay tests
	// compare floats with == on purpose.
	if cfg.VetxOnly || strings.Contains(cfg.ImportPath, ".test") || strings.HasSuffix(cfg.ImportPath, "_test") {
		writeVetx()
		return 0
	}
	var files []string
	for _, f := range cfg.GoFiles {
		if strings.HasSuffix(f, "_test.go") {
			continue
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		writeVetx()
		return 0
	}
	pkg, err := analyzers.TypeCheckVet(cfg.ImportPath, files, cfg.ImportMap, cfg.PackageFile)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return 0
		}
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	diags, err := analyzers.RunAnalyzers([]*analyzers.Package{pkg}, analyzers.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	writeVetx()
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s\n", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
