// Command netsamplint is netsamp's multichecker: it runs the
// internal/analyzers suite (determinism, noalloc, noallocflow,
// atomicfield, guardedby, ctxhygiene, codecpair, codecver, floatcmp,
// stickyerr) over Go packages and reports invariant violations.
//
// Two modes share the same analyzers and type information:
//
//	netsamplint [-json] [-write-codec-fingerprints] [packages...]
//	    Standalone: loads the named packages (default ./...) through
//	    `go list -export`, analyzes them, prints findings, exits 2 when
//	    any are found. -json emits the LINT_BASELINE.json format.
//	    -write-codec-fingerprints regenerates CODEC_FINGERPRINTS.json
//	    at the module root before analyzing.
//
//	go vet -vettool=$(which netsamplint) ./...
//	    Vet tool: the go command invokes the binary once per package
//	    with a JSON config file (the unitchecker protocol: -V=full for
//	    the tool's version fingerprint, -flags for its flag set, then
//	    <pkg>.cfg), and netsamplint typechecks from the supplied export
//	    data and analyzes just that package. Each visit writes the
//	    package's //netsamp: facts (noalloc annotations) to its .vetx
//	    file; dependency facts arrive back through PackageVetx, which is
//	    how the interprocedural noallocflow check sees across package
//	    boundaries under vet.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"

	"netsamp/internal/analyzers"
)

func main() {
	// The go command probes vet tools before use: -V=full must print a
	// version fingerprint, -flags the supported analyzer flags.
	if len(os.Args) == 2 && os.Args[1] == "-V=full" {
		printVersion()
		return
	}
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		fmt.Println("[]")
		return
	}
	if len(os.Args) == 2 && strings.HasSuffix(os.Args[1], ".cfg") {
		os.Exit(unitcheck(os.Args[1]))
	}

	jsonOut := flag.Bool("json", false, "emit findings as JSON (the committed baseline format)")
	writeFP := flag.Bool("write-codec-fingerprints", false,
		"regenerate "+analyzers.CodecFingerprintFile+" at the module root from the loaded packages, then analyze")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: netsamplint [-json] [-write-codec-fingerprints] [packages...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	os.Exit(standalone(patterns, *jsonOut, *writeFP))
}

// printVersion emits the fingerprint line the go command caches vet
// results under; it must change whenever the binary changes, so it
// hashes the executable.
func printVersion() {
	h := sha256.New()
	if f, err := os.Open(os.Args[0]); err == nil {
		io.Copy(h, f) //nolint:errcheck // a partial hash only weakens caching
		f.Close()
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", os.Args[0], h.Sum(nil)[:8])
}

// baseline is the LINT_BASELINE.json schema: the committed artifact
// future PRs diff their own run against.
type baseline struct {
	Tool      string                 `json:"tool"`
	Analyzers []string               `json:"analyzers"`
	Packages  int                    `json:"packages_analyzed"`
	Findings  []analyzers.Diagnostic `json:"findings"`
}

func standalone(patterns []string, jsonOut, writeFP bool) int {
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	pkgs, err := analyzers.LoadPackages(dir, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	// packages_analyzed counts analyzed packages only; facts-only
	// dependency packages feed the interprocedural checks but are not
	// analysis targets.
	analyzed := 0
	for _, p := range pkgs {
		if !p.FactsOnly {
			analyzed++
		}
	}
	if writeFP {
		root := moduleRoot(dir)
		if root == "" {
			fmt.Fprintln(os.Stderr, "netsamplint: no go.mod above", dir)
			return 1
		}
		ledger := make(map[string]analyzers.CodecFingerprint)
		for _, p := range pkgs {
			for k, v := range analyzers.CodecFingerprintsForPackage(p) {
				ledger[k] = v
			}
		}
		path := filepath.Join(root, analyzers.CodecFingerprintFile)
		if err := analyzers.WriteCodecFingerprints(path, ledger); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "netsamplint: wrote %d fingerprint(s) to %s\n", len(ledger), path)
	}
	suite := analyzers.All()
	diags, err := analyzers.RunAnalyzers(pkgs, suite)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if jsonOut {
		if diags == nil {
			diags = []analyzers.Diagnostic{} // a clean run baselines as [], not null
		}
		names := make([]string, len(suite))
		for i, a := range suite {
			names[i] = a.Name
		}
		out, err := json.MarshalIndent(baseline{
			Tool:      "netsamplint",
			Analyzers: names,
			Packages:  analyzed,
			Findings:  diags,
		}, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Println(string(out))
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !jsonOut {
			fmt.Fprintf(os.Stderr, "netsamplint: %d finding(s)\n", len(diags))
		}
		return 2
	}
	return 0
}

// vetConfig is the JSON the go command writes for a vet tool (the
// unitchecker protocol's per-package config). PackageVetx maps each
// dependency's import path to the facts file a previous visit wrote —
// the channel through which //netsamp:noalloc annotations cross
// package boundaries under vet.
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	ImportMap    map[string]string
	PackageFile  map[string]string
	PackageVetx  map[string]string
	VetxOnly     bool
	VetxOutput   string
	Standard     map[string]bool
	GoVersion    string
	NonGoFiles   []string
	IgnoredFiles []string

	SucceedOnTypecheckFailure bool
}

// moduleRoot walks up from dir to the directory holding go.mod.
func moduleRoot(dir string) string {
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return ""
		}
		dir = parent
	}
}

// nonTestFiles drops _test.go files: the invariants govern shipped
// code, and the bitwise replay tests compare floats with == on purpose.
func nonTestFiles(goFiles []string) []string {
	var files []string
	for _, f := range goFiles {
		if strings.HasSuffix(f, "_test.go") {
			continue
		}
		files = append(files, f)
	}
	return files
}

// writeVetx writes the package's facts to the .vetx path the go command
// demands exist after every visit; dependents read it via PackageVetx.
func writeVetx(cfg vetConfig, facts *analyzers.PackageFacts) {
	if cfg.VetxOutput == "" {
		return
	}
	if facts == nil {
		facts = &analyzers.PackageFacts{}
	}
	data, err := json.Marshal(facts)
	if err != nil {
		data = []byte("{}")
	}
	os.WriteFile(cfg.VetxOutput, data, 0o666) //nolint:errcheck // vet surfaces the missing file itself
}

// parseFacts extracts //netsamp: facts from source files, syntax-only
// (no type information needed), for VetxOnly dependency visits.
func parseFacts(files []string) *analyzers.PackageFacts {
	fset := token.NewFileSet()
	var parsed []*ast.File
	for _, f := range files {
		af, err := parser.ParseFile(fset, f, nil, parser.ParseComments)
		if err != nil {
			// A dependency that does not parse fails the build elsewhere;
			// contribute what parsed so analysis visits still proceed.
			continue
		}
		parsed = append(parsed, af)
	}
	return analyzers.ExtractFacts(parsed)
}

// readDepFacts loads the facts files of dependency packages as
// facts-only Package values for RunAnalyzers.
func readDepFacts(packageVetx map[string]string) []*analyzers.Package {
	var deps []*analyzers.Package
	for path, file := range packageVetx {
		data, err := os.ReadFile(file)
		if err != nil || len(data) == 0 {
			continue
		}
		var facts analyzers.PackageFacts
		if json.Unmarshal(data, &facts) != nil {
			continue // another tool's vetx format; no facts to take
		}
		deps = append(deps, &analyzers.Package{Path: path, Facts: &facts, FactsOnly: true})
	}
	return deps
}

func unitcheck(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "netsamplint: parse %s: %v\n", cfgPath, err)
		return 1
	}
	// Test variants (pkg.test, "pkg [pkg.test]", pkg_test) are skipped
	// entirely; dependency visits (VetxOnly) contribute facts only.
	if strings.Contains(cfg.ImportPath, ".test") || strings.HasSuffix(cfg.ImportPath, "_test") {
		writeVetx(cfg, nil)
		return 0
	}
	files := nonTestFiles(cfg.GoFiles)
	if cfg.VetxOnly || len(files) == 0 {
		var facts *analyzers.PackageFacts
		if len(files) > 0 {
			facts = parseFacts(files)
		}
		writeVetx(cfg, facts)
		return 0
	}
	pkg, err := analyzers.TypeCheckVet(cfg.ImportPath, files, cfg.ImportMap, cfg.PackageFile)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx(cfg, parseFacts(files))
			return 0
		}
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	pkgs := append([]*analyzers.Package{pkg}, readDepFacts(cfg.PackageVetx)...)
	diags, err := analyzers.RunAnalyzers(pkgs, analyzers.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	writeVetx(cfg, pkg.Facts)
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s\n", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
