package main

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"netsamp/internal/ingest"
	"netsamp/internal/netflow"
	"netsamp/internal/packet"
	"netsamp/internal/rng"
)

// loadConfig parameterizes the load-generator mode: saturate a sharded
// collector with synthetic export traffic at a chosen multiple of its
// record budget, inject wire faults, and audit the drop accounting.
type loadConfig struct {
	Shards    int
	Ring      int
	Policy    string
	Capacity  int     // per-shard record budget per second
	Multiple  float64 // offered load as a multiple of aggregate capacity
	Duration  time.Duration
	Exporters int
	Seed      uint64
	LossP     float64 // per-datagram probability of a sequence skip (wire loss)
	DupP      float64 // per-datagram probability of a duplicate send
	ReorderP  float64 // per-datagram probability of swapping with the next send

	RequireDrops bool   // fail unless overload actually shed records
	JSONPath     string // write the machine-readable summary here ("" = skip)
}

// loadSummary is the machine-readable result the soak job archives and
// asserts on.
type loadSummary struct {
	Shards          int     `json:"shards"`
	CapacityPerSec  int     `json:"capacity_per_shard_per_sec"`
	OfferedMultiple float64 `json:"offered_multiple"`
	DurationSec     float64 `json:"duration_sec"`
	SentRecords     uint64  `json:"sent_records"`
	SentDatagrams   uint64  `json:"sent_datagrams"`
	SkippedRecords  uint64  `json:"skipped_records"` // injected wire loss
	Received        uint64  `json:"received_records"`
	Delivered       uint64  `json:"delivered_records"`
	DroppedOverload uint64  `json:"dropped_overload"`
	DroppedShutdown uint64  `json:"dropped_shutdown"`
	LostUpstream    uint64  `json:"lost_upstream"`
	Duplicates      uint64  `json:"duplicates"`
	CoarseBatches   uint64  `json:"coarse_batches"`
	Restarts        uint64  `json:"restarts"`
	DropFraction    float64 `json:"drop_fraction"`
	LossFraction    float64 `json:"loss_fraction"`
	HandoffP99Nanos int64   `json:"handoff_p99_nanos"`
	RecordsPerSec   float64 `json:"delivered_records_per_sec"`
	InvariantOK     bool    `json:"invariant_ok"`
}

// runLoad drives one overload soak: Exporters senders blast full
// datagrams at Multiple× the collector's aggregate record budget over
// loopback UDP, with seeded loss/duplicate/reorder faults, then the
// drained collector's books are audited — received must equal
// delivered + dropped exactly, and under overload the Overload bucket
// must be the one that absorbed the excess.
func runLoad(cfg loadConfig) error {
	policy, err := ingest.ParsePolicy(cfg.Policy)
	if err != nil {
		return err
	}
	col, err := ingest.New(ingest.Config{
		Shards:           cfg.Shards,
		RingSize:         cfg.Ring,
		Policy:           policy,
		CapacityPerShard: cfg.Capacity,
	})
	if err != nil {
		return err
	}
	if err := col.Listen("127.0.0.1:0"); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "load: %d shards x %d records/s, offering %.1fx for %v (%d exporters, loss %.3f dup %.3f reorder %.3f)\n",
		cfg.Shards, cfg.Capacity, cfg.Multiple, cfg.Duration, cfg.Exporters, cfg.LossP, cfg.DupP, cfg.ReorderP)

	// Offered rate: Multiple × the aggregate budget, split evenly over
	// the exporters; each sender paces itself in 5ms ticks.
	offered := cfg.Multiple * float64(cfg.Shards*cfg.Capacity)
	perExporter := offered / float64(cfg.Exporters)
	var sent, sentDgrams, skipped atomic.Uint64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for e := 0; e < cfg.Exporters; e++ {
		wg.Add(1)
		go func(exp uint32) {
			defer wg.Done()
			conn, err := net.Dial("udp", col.Addr())
			if err != nil {
				fmt.Fprintf(os.Stderr, "load: exporter %d: %v\n", exp, err)
				return
			}
			defer conn.Close()
			src := rng.New(rng.SplitSeed(cfg.Seed, uint64(exp)))
			const tick = 5 * time.Millisecond
			perTick := perExporter * tick.Seconds() / netflow.MaxRecordsPerDatagram
			if perTick < 1 {
				perTick = 1
			}
			seq := uint32(1)
			var held []byte // reordered datagram awaiting its successor
			ticker := time.NewTicker(tick)
			defer ticker.Stop()
			var carry float64
			for {
				select {
				case <-stop:
					return
				case <-ticker.C:
				}
				carry += perTick
				for ; carry >= 1; carry-- {
					if src.Bernoulli(cfg.LossP) {
						// Wire loss: the datagram is "emitted" (the sequence
						// advances) but never sent.
						skipped.Add(netflow.MaxRecordsPerDatagram)
						seq += netflow.MaxRecordsPerDatagram
						continue
					}
					b := loadDgram(exp, seq, src)
					seq += netflow.MaxRecordsPerDatagram
					send := func(p []byte) {
						conn.Write(p)
						sentDgrams.Add(1)
						sent.Add(netflow.MaxRecordsPerDatagram)
					}
					switch {
					case held != nil:
						send(b)
						send(held)
						held = nil
					case src.Bernoulli(cfg.ReorderP):
						held = b
					default:
						send(b)
						if src.Bernoulli(cfg.DupP) {
							send(b)
						}
					}
				}
			}
		}(uint32(1 + e))
	}

	time.Sleep(cfg.Duration)
	close(stop)
	wg.Wait()
	// Let the workers drain what the rings still hold before closing.
	time.Sleep(200 * time.Millisecond)
	if err := col.Close(); err != nil {
		return err
	}

	v := col.Snapshot()
	invErr := v.CheckInvariant()
	var coarse, restarts uint64
	for _, s := range v.Shards {
		coarse += s.CoarseBatches
		restarts += s.Restarts
	}
	sum := loadSummary{
		Shards:          cfg.Shards,
		CapacityPerSec:  cfg.Capacity,
		OfferedMultiple: cfg.Multiple,
		DurationSec:     cfg.Duration.Seconds(),
		SentRecords:     sent.Load(),
		SentDatagrams:   sentDgrams.Load(),
		SkippedRecords:  skipped.Load(),
		Received:        v.Records,
		Delivered:       v.Delivered,
		DroppedOverload: v.Dropped.Overload,
		DroppedShutdown: v.Dropped.Shutdown,
		LostUpstream:    v.LostRecords,
		Duplicates:      v.Duplicates,
		CoarseBatches:   coarse,
		Restarts:        restarts,
		LossFraction:    v.LossFraction,
		HandoffP99Nanos: int64(v.HandoffP99),
		InvariantOK:     invErr == nil,
	}
	if v.Records > 0 {
		sum.DropFraction = float64(v.Dropped.Total()) / float64(v.Records)
	}
	if cfg.Duration > 0 {
		sum.RecordsPerSec = float64(v.Delivered) / cfg.Duration.Seconds()
	}
	fmt.Fprintf(os.Stderr,
		"load: sent %d records (%d dgrams, %d skipped as wire loss); received %d, delivered %d (%.0f rec/s), dropped %d overload + %d shutdown (%.3f of received), lost upstream %d, dup %d\n",
		sum.SentRecords, sum.SentDatagrams, sum.SkippedRecords, sum.Received, sum.Delivered,
		sum.RecordsPerSec, sum.DroppedOverload, sum.DroppedShutdown, sum.DropFraction, sum.LostUpstream, sum.Duplicates)
	fmt.Fprintf(os.Stderr, "load: coarse batches %d, restarts %d, hand-off p99 %v, estimator loss fraction %.4f\n",
		sum.CoarseBatches, sum.Restarts, time.Duration(sum.HandoffP99Nanos), sum.LossFraction)

	if cfg.JSONPath != "" {
		blob, err := json.MarshalIndent(sum, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.JSONPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
	}
	if invErr != nil {
		return fmt.Errorf("accounting invariant violated: %w", invErr)
	}
	if cfg.RequireDrops && v.Dropped.Overload == 0 {
		return fmt.Errorf("overload soak shed nothing: offered %.1fx capacity but Overload bucket is zero", cfg.Multiple)
	}
	return nil
}

// loadDgram builds one full synthetic export datagram. Flow keys vary
// with (exporter, seq, i) so the shard's accumulation paths see
// realistic key churn; Start varies across a 300s interval so bins
// rotate.
func loadDgram(exp, seq uint32, src *rng.Source) []byte {
	const count = netflow.MaxRecordsPerDatagram
	h := packet.Header{Count: count, Seq: seq, Exporter: exp}
	b := h.AppendTo(make([]byte, 0, packet.HeaderSize+count*packet.RecordSize))
	start := uint32(src.Intn(300))
	for i := 0; i < count; i++ {
		rec := packet.Record{
			Key: packet.FiveTuple{
				Src: packet.Addr(exp), Dst: packet.Addr(seq + uint32(i)),
				SrcPort: uint16(seq), DstPort: uint16(src.Intn(65536)), Proto: packet.ProtoUDP,
			},
			MonitorID: uint16(exp),
			Packets:   uint64(1 + src.Intn(100)),
			Bytes:     uint64(64 * (1 + src.Intn(32))),
			Start:     start,
			End:       start + 1,
		}
		b = rec.AppendTo(b)
	}
	return b
}
