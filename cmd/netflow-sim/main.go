// Command netflow-sim deploys the optimizer's plan for the paper's
// JANET task on the NetFlow substrate and replays one full measurement
// interval of task traffic through it, packet by packet:
//
//	optimizer plan → per-link sampled flow tables → UDP export →
//	collector → binning + renormalization → OD size estimates,
//
// then reports the per-pair estimation accuracy, validating the sampling
// plan on the deployed pipeline rather than in closed form.
//
// Background (cross) traffic enters the budget through the link loads
// the optimizer sees; it is not replayed packet-by-packet here because
// only task packets contribute to the OD estimates (the collector's
// classifier drops everything else).
//
// Usage:
//
//	netflow-sim [-theta 100000] [-seed 1] [-scale 0.1]
//
// -scale trades fidelity for speed by scaling all traffic and θ
// together; accuracies are then those of the scaled system.
//
// A second mode, -load, turns the binary into an overload soak driver
// for the sharded ingest tier: synthetic exporters blast datagrams at a
// chosen multiple of the collector's record budget with injected wire
// faults, and the run fails unless the drop accounting balances exactly
// (and, with -require-drops, unless overload actually shed records):
//
//	netflow-sim -load -load-x 4 -load-duration 30s -require-drops
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"netsamp"
	"netsamp/internal/core"
	"netsamp/internal/eval"
	"netsamp/internal/netflow"
	"netsamp/internal/packet"
	"netsamp/internal/plan"
	"netsamp/internal/prefix"
	"netsamp/internal/rng"
	"netsamp/internal/sampling"
	"netsamp/internal/topology"
	"netsamp/internal/traffic"
)

func main() {
	theta := flag.Float64("theta", 100000, "budget θ in packets per 5-minute interval")
	seed := flag.Uint64("seed", 1, "scenario and sampling seed")
	scale := flag.Float64("scale", 1, "traffic/θ scale factor (<1 runs faster but with proportionally less accurate estimates)")
	archive := flag.String("archive", "", "write collected flow records to this archive file (netflow.RecordWriter format)")
	load := flag.Bool("load", false, "run the ingest overload soak instead of the accuracy replay")
	loadShards := flag.Int("load-shards", 4, "load mode: collector shards")
	loadRing := flag.Int("load-ring", 1024, "load mode: datagram ring capacity per shard")
	loadPolicy := flag.String("load-policy", "drop-newest", "load mode: overload policy (drop-newest or block)")
	loadCapacity := flag.Int("load-capacity", 250000, "load mode: per-shard record budget per second")
	loadX := flag.Float64("load-x", 4, "load mode: offered load as a multiple of aggregate capacity")
	loadDuration := flag.Duration("load-duration", 10*time.Second, "load mode: soak duration")
	loadExporters := flag.Int("load-exporters", 8, "load mode: concurrent synthetic exporters")
	loadLoss := flag.Float64("load-loss", 0.01, "load mode: per-datagram wire-loss probability (sequence skip)")
	loadDup := flag.Float64("load-dup", 0.005, "load mode: per-datagram duplicate probability")
	loadReorder := flag.Float64("load-reorder", 0.01, "load mode: per-datagram reorder probability")
	requireDrops := flag.Bool("require-drops", false, "load mode: fail unless the Overload bucket is nonzero")
	loadJSON := flag.String("load-json", "", "load mode: write the machine-readable summary to this file")
	flag.Parse()
	var err error
	if *load {
		err = runLoad(loadConfig{
			Shards:       *loadShards,
			Ring:         *loadRing,
			Policy:       *loadPolicy,
			Capacity:     *loadCapacity,
			Multiple:     *loadX,
			Duration:     *loadDuration,
			Exporters:    *loadExporters,
			Seed:         *seed,
			LossP:        *loadLoss,
			DupP:         *loadDup,
			ReorderP:     *loadReorder,
			RequireDrops: *requireDrops,
			JSONPath:     *loadJSON,
		})
	} else {
		err = run(*theta, *seed, *scale, *archive)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "netflow-sim:", err)
		os.Exit(1)
	}
}

func run(theta float64, seed uint64, scale float64, archive string) error {
	if scale <= 0 || scale > 1 {
		return fmt.Errorf("scale %v out of (0, 1]", scale)
	}
	const interval = uint32(eval.Interval)
	s, err := netsamp.BuildGEANT(seed)
	if err != nil {
		return err
	}
	// Scale the system uniformly: OD rates, link loads and θ.
	odRates := make([]float64, len(s.Rates))
	inv := make([]float64, len(s.Rates))
	for k, r := range s.Rates {
		odRates[k] = r * scale
		inv[k] = 1 / (odRates[k] * float64(interval))
	}
	loads := make([]float64, len(s.Loads))
	for i, u := range s.Loads {
		loads[i] = u * scale
	}
	theta *= scale

	prob, _, err := plan.Build(plan.Input{
		Matrix:       s.Matrix,
		Loads:        loads,
		Candidates:   s.MonitorLinks,
		InvMeanSizes: inv,
		Budget:       core.BudgetPerInterval(theta, float64(interval)),
	})
	if err != nil {
		return err
	}
	sol, err := core.Solve(prob, core.Options{})
	if err != nil {
		return err
	}
	planRates := plan.RatesByLink(sol, s.MonitorLinks)
	fmt.Printf("plan: %d active monitors, θ = %.0f pkts/interval (scale %.2f), converged=%v\n",
		len(planRates), theta, scale, sol.Stats.Converged)

	collector, err := netflow.NewCollector("127.0.0.1:0")
	if err != nil {
		return err
	}
	master := rng.New(seed ^ 0xfeed)
	type monitor struct {
		link  topology.LinkID
		table *netflow.FlowTable
		exp   *netflow.Exporter
	}
	var monitors []monitor
	id := uint16(1)
	for _, lid := range s.MonitorLinks {
		p := planRates[lid]
		if p == 0 {
			continue
		}
		cfg := netflow.DefaultConfig()
		cfg.SamplingRate = p
		exp, err := netflow.NewExporter(collector.Addr(), uint32(id))
		if err != nil {
			return err
		}
		monitors = append(monitors, monitor{lid, netflow.NewFlowTable(id, cfg, master.Split()), exp})
		id++
	}

	// Each destination PoP owns a /24 (10.0.<k>.0/24); flow records are
	// classified back to OD pairs by longest-prefix match on the
	// destination address, the paper's egress-resolution step.
	var egress prefix.Table
	for k := range s.Pairs {
		egress.MustInsert(packet.AddrFrom4(10, 0, byte(k), 0), 24, int32(k))
	}
	est, err := netflow.NewEstimator(interval, sol.Rho, netflow.PrefixClassifier(&egress))
	if err != nil {
		return err
	}
	var store *netflow.RecordWriter
	var storeFile *os.File
	if archive != "" {
		storeFile, err = os.Create(archive)
		if err != nil {
			return err
		}
		store, err = netflow.NewRecordWriter(storeFile)
		if err != nil {
			return err
		}
	}
	done := make(chan struct{})
	go func() {
		for batch := range collector.Batches() {
			est.AddBatch(batch)
			if store != nil {
				for _, rec := range batch.Records {
					if err := store.Write(rec); err != nil {
						fmt.Fprintln(os.Stderr, "netflow-sim: archive:", err)
						return
					}
				}
			}
		}
		close(done)
	}()

	// Replay one interval of task traffic in time-major order: flows
	// arrive as a Poisson process, spread their packets over their
	// lifetime, and the flow tables run their per-second expiry sweep —
	// the way a router actually behaves.
	start := time.Now()
	gen := rng.New(seed ^ 0xbeef)
	truth := make([]int64, len(s.Pairs))
	type liveFlow struct {
		key     packet.FiveTuple
		onPath  []monitor
		perSec  int64 // packets to emit per second while alive
		left    int64
		lastSec uint32 // final second (emits the remainder)
	}
	// Bucket flow arrivals by second.
	arrivals := make([][]*liveFlow, interval)
	for k := range s.Pairs {
		fs := traffic.GenerateTimedFlows(odRates[k], float64(interval), s.SizeDists[k], 30, gen)
		truth[k] = fs.Total
		var onPath []monitor
		for _, m := range monitors {
			if s.Matrix.Traverses(k, m.link) {
				onPath = append(onPath, m)
			}
		}
		if len(onPath) == 0 {
			continue
		}
		for fi, f := range fs.Flows {
			// Destination host drawn inside the PoP's /24.
			dst := packet.AddrFrom4(10, 0, byte(k), byte(1+fi%250))
			sec := uint32(f.Start)
			lastSec := uint32(f.Start + f.Duration)
			if lastSec >= interval {
				lastSec = interval - 1
			}
			life := int64(lastSec-sec) + 1
			lf := &liveFlow{
				key: packet.FiveTuple{
					Src:     packet.AddrFrom4(192, 168, byte(fi>>8), byte(fi)),
					Dst:     dst,
					SrcPort: uint16(1024 + fi%50000),
					DstPort: 443,
					Proto:   packet.ProtoTCP,
				},
				onPath:  onPath,
				perSec:  f.Size / life,
				left:    f.Size,
				lastSec: lastSec,
			}
			arrivals[sec] = append(arrivals[sec], lf)
		}
	}
	var live []*liveFlow
	for now := uint32(0); now < interval; now++ {
		live = append(live, arrivals[now]...)
		keep := live[:0]
		for _, lf := range live {
			emit := lf.perSec
			if now >= lf.lastSec {
				emit = lf.left // final second: flush the remainder
			}
			if emit > lf.left {
				emit = lf.left
			}
			for j := int64(0); j < emit; j++ {
				for _, m := range lf.onPath {
					if _, ev := m.table.Observe(lf.key, 1500, now); ev != nil {
						if err := m.exp.Export(ev); err != nil {
							return err
						}
					}
				}
			}
			lf.left -= emit
			if lf.left > 0 {
				keep = append(keep, lf)
			}
		}
		live = keep
		// Per-second expiry sweep on every monitor (router behaviour).
		for _, m := range monitors {
			if recs := m.table.Expire(now); len(recs) > 0 {
				if err := m.exp.Export(recs); err != nil {
					return err
				}
			}
		}
	}
	var expected, sampledTotal uint64
	for _, m := range monitors {
		if err := m.exp.Export(m.table.Flush()); err != nil {
			return err
		}
		if err := m.exp.Close(); err != nil {
			return err
		}
		st := m.table.Stats()
		expected += st.ExpiredFlows + st.EvictedFlows
		sampledTotal += st.SampledPackets
	}
	// Drain the loopback: wait until every record arrived or the intake
	// has been quiet for a while (sequence gaps report true loss below).
	deadline := time.Now().Add(10 * time.Second)
	last, lastChange := uint64(0), time.Now()
	for time.Now().Before(deadline) {
		got := collector.Stats().Records
		if got >= expected {
			break
		}
		if got != last {
			last, lastChange = got, time.Now()
		} else if time.Since(lastChange) > 500*time.Millisecond {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	collector.Close()
	<-done
	if store != nil {
		if err := store.Close(); err != nil {
			return err
		}
		if err := storeFile.Close(); err != nil {
			return err
		}
		fmt.Printf("archived %d records to %s\n", store.Count(), archive)
	}
	cs := collector.Stats()
	fmt.Printf("replayed interval in %v; sampled %d task packets (θ=%.0f also covers cross traffic, not replayed); collector: %d records, %d lost\n\n",
		time.Since(start).Round(time.Millisecond), sampledTotal, theta, cs.Records, cs.LostRecords)

	bins := est.Estimates()
	if len(bins) == 0 {
		return fmt.Errorf("no estimates produced")
	}
	bin := bins[0]
	fmt.Printf("%-12s %12s %12s %10s %10s\n", "OD pair", "actual pkts", "estimated", "accuracy", "rho")
	worst := 1.0
	for k := range s.Pairs {
		acc := sampling.Accuracy(bin.Estimate[k], float64(truth[k]))
		if acc < worst {
			worst = acc
		}
		fmt.Printf("%-12s %12d %12.0f %10.4f %10.6f\n",
			s.Pairs[k].Name, truth[k], bin.Estimate[k], acc, sol.Rho[k])
	}
	fmt.Printf("\nworst-pair accuracy: %.4f\n", worst)
	return nil
}
