package main

import (
	"context"
	"flag"
	"os"

	"netsamp/internal/eval"
	"netsamp/internal/geant"
)

// cmdCoordinate runs the coordinated-vs-independent sampling study: the
// same GEANT instance solved under the independent (product) and
// coordinated (additive, hash-partitioned) rate models across the θ
// grid, reporting deployed coverages, simulated accuracies, and the
// coverage gained by coordinating the independent optimum's own rates.
func cmdCoordinate(args []string) error {
	fs := flag.NewFlagSet("coordinate", flag.ExitOnError)
	trials := fs.Int("trials", 20, "sampling experiments per OD pair and θ")
	csv := fs.Bool("csv", false, "emit CSV instead of the table")
	seed := scenarioFlags(fs)
	expSeed := fs.Uint64("expseed", 42, "seed of the sampling experiments")
	workers := workersFlag(fs)
	fs.Parse(args)
	if err := checkWorkers(fs, *workers); err != nil {
		return err
	}
	s, err := geant.Build(*seed)
	if err != nil {
		return err
	}
	points, err := eval.CoordinationStudyCtx(context.Background(), s, eval.DefaultThetas(), *trials, *expSeed, *workers)
	if err != nil {
		return err
	}
	if *csv {
		header, rows := eval.CoordinationCSV(points)
		return eval.WriteCSV(os.Stdout, header, rows)
	}
	return eval.RenderCoordination(os.Stdout, points)
}
