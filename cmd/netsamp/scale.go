package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"netsamp/internal/control"
	"netsamp/internal/core"
	"netsamp/internal/engine"
	"netsamp/internal/plan"
	"netsamp/internal/topology"
)

// The scale suite: end-to-end solves of generated ISP-like instances at
// 1k/5k/10k links, timed against the 5-minute measurement interval the
// paper's operational story assumes. Each size reports wall time,
// solver iterations, steady-state allocations and peak RSS, plus the
// deadline policy's routing decision (exact or Frank-Wolfe, with the
// duality-gap certificate) and a truncated-solve check of the sharded
// kernels' bit-identity across worker counts.

// scaleOptions parameterizes one scale-suite run.
type scaleOptions struct {
	seed         uint64
	links        []int
	pairsPerLink int           // 0 = generator default (100·links, capped)
	budgetFrac   float64       // θ as a fraction of the max sampled rate
	interval     time.Duration // the deadline the policy defends
	workers      int           // shard pool size for the timed solve
	checkWorkers []int         // worker counts for the bit-identity check
	checkIters   int           // truncated iterations for that check
}

func defaultScaleOptions() scaleOptions {
	return scaleOptions{
		seed:         1,
		links:        []int{1000, 5000, 10000},
		budgetFrac:   0.05,
		interval:     5 * time.Minute,
		checkWorkers: []int{2, 4},
		checkIters:   8,
	}
}

// scaleResult is one instance size's measured outcome.
type scaleResult struct {
	Links, Pairs, NNZ int
	GenWall           time.Duration // generator + CSR compile
	SolveWall         time.Duration
	Iterations        int
	Converged         bool
	Approximated      bool // deadline policy routed to Frank-Wolfe
	Objective         float64
	GapBound          float64
	Allocs            uint64 // mallocs during the timed solve (steady state)
	PeakRSS           uint64 // bytes, /proc/self/status VmHWM
	ShardIdentical    bool
}

// runScaleSuite measures every requested size. The per-size work is
// deliberately sequential — the point is single-machine wall time per
// solve, not throughput of the suite.
func runScaleSuite(opt scaleOptions, logf func(string, ...any)) ([]scaleResult, error) {
	results := make([]scaleResult, 0, len(opt.links))
	for _, links := range opt.links {
		res, err := runScaleSize(opt, links, logf)
		if err != nil {
			return nil, fmt.Errorf("scale: %d links: %w", links, err)
		}
		results = append(results, res)
	}
	return results, nil
}

func runScaleSize(opt scaleOptions, links int, logf func(string, ...any)) (scaleResult, error) {
	var res scaleResult
	cfg := topology.ScaleConfig{Seed: opt.seed, Links: links, ECMP: true}
	if opt.pairsPerLink > 0 {
		cfg.Pairs = opt.pairsPerLink * links
	}
	genStart := time.Now()
	inst, err := topology.GenerateScale(cfg)
	if err != nil {
		return res, err
	}
	budget := opt.budgetFrac * inst.MaxSampledRate()
	cp, err := plan.BuildScale(inst, budget, nil)
	if err != nil {
		return res, err
	}
	s, err := core.NewSolverCSR(cp)
	if err != nil {
		return res, err
	}
	res.Links = len(inst.Loads)
	res.Pairs = inst.NumPairs()
	res.NNZ = inst.NNZ()
	res.GenWall = time.Since(genStart)
	logf("scale: %d links, %d pairs, %d nnz built in %v", res.Links, res.Pairs, res.NNZ, res.GenWall.Round(time.Millisecond))

	pool := engine.NewPool(opt.workers)
	defer pool.Close()
	s.Shard(pool)

	// Route through the controller's deadline policy: same cost model,
	// same decision a live deployment would make for this instance.
	policy := control.ApproxPolicy{Enabled: true}
	res.Approximated = policy.Overruns(res.NNZ, opt.interval)

	// Warm the solver so the timed run measures steady state (the
	// daemon's regime: one solve per interval on a long-lived solver).
	var sol core.Solution
	if res.Approximated {
		err = s.SolveApproxInto(&sol, core.ApproxOptions{MaxIter: 2})
	} else {
		err = s.SolveInto(&sol, core.Options{MaxIter: 2})
	}
	if err != nil {
		return res, err
	}

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	if res.Approximated {
		err = s.SolveApproxInto(&sol, core.ApproxOptions{})
	} else {
		err = s.SolveInto(&sol, core.Options{})
	}
	res.SolveWall = time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		return res, err
	}
	res.Allocs = after.Mallocs - before.Mallocs
	res.Iterations = sol.Stats.Iterations
	res.Converged = sol.Stats.Converged
	res.Objective = sol.Objective
	res.GapBound = sol.GapBound
	res.PeakRSS = peakRSSBytes()
	mode := "exact"
	if res.Approximated {
		mode = fmt.Sprintf("approx (gap %.4g)", res.GapBound)
	}
	within := "inside"
	if res.SolveWall > opt.interval {
		within = "OVER"
	}
	logf("scale: %d links solved %s in %v (%d iters, %d allocs) — %s the %v interval",
		res.Links, mode, res.SolveWall.Round(time.Millisecond), res.Iterations, res.Allocs, within, opt.interval)

	res.ShardIdentical, err = scaleShardIdentity(cp, opt)
	if err != nil {
		return res, err
	}
	logf("scale: %d links shard bit-identity across workers %v: %v", res.Links, opt.checkWorkers, res.ShardIdentical)
	return res, nil
}

// scaleShardIdentity re-solves a truncated prefix of the iteration path
// per worker count and compares against the single-worker sharded
// solve bitwise. Bit-identity is a path property, so a truncated prefix
// proves as much as a full solve at a fraction of the cost.
func scaleShardIdentity(cp *core.CSRProblem, opt scaleOptions) (bool, error) {
	solveAt := func(workers int) (*core.Solution, error) {
		s, err := core.NewSolverCSR(cp)
		if err != nil {
			return nil, err
		}
		pool := engine.NewPool(workers)
		defer pool.Close()
		s.Shard(pool)
		return s.Solve(core.Options{MaxIter: opt.checkIters})
	}
	base, err := solveAt(1)
	if err != nil {
		return false, err
	}
	for _, w := range opt.checkWorkers {
		sol, err := solveAt(w)
		if err != nil {
			return false, err
		}
		//netsamp:floateq-ok bit-identity is the property under test, not a tolerance check
		if sol.Objective != base.Objective {
			return false, nil
		}
		for i := range sol.Rates {
			//netsamp:floateq-ok bit-identity is the property under test, not a tolerance check
			if sol.Rates[i] != base.Rates[i] {
				return false, nil
			}
		}
	}
	return true, nil
}

// peakRSSBytes reads the process high-water RSS from /proc (0 where
// unavailable — the metric is informative, not load-bearing).
func peakRSSBytes() uint64 {
	raw, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(raw), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 2 {
			return 0
		}
		kb, err := strconv.ParseUint(f[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb * 1024
	}
	return 0
}

// scaleBenchResults converts suite measurements into the bench report
// schema so they merge into BENCH_results.json next to the go test
// benchmarks.
func scaleBenchResults(opt scaleOptions, results []scaleResult) []BenchResult {
	out := make([]BenchResult, 0, len(results))
	for _, r := range results {
		approx := 0.0
		if r.Approximated {
			approx = 1
		}
		identical := 0.0
		if r.ShardIdentical {
			identical = 1
		}
		converged := 0.0
		if r.Converged {
			converged = 1
		}
		out = append(out, BenchResult{
			Name:       fmt.Sprintf("ScaleSolve/links=%d", r.Links),
			Iterations: 1,
			Metrics: map[string]float64{
				"ns/op":           float64(r.SolveWall.Nanoseconds()),
				"gen-ns":          float64(r.GenWall.Nanoseconds()),
				"allocs/op":       float64(r.Allocs),
				"solver-iters/op": float64(r.Iterations),
				"converged":       converged,
				"links":           float64(r.Links),
				"pairs":           float64(r.Pairs),
				"nnz":             float64(r.NNZ),
				"approx":          approx,
				"gap-bound":       r.GapBound,
				"objective":       r.Objective,
				"peak-rss-bytes":  float64(r.PeakRSS),
				"deadline-ns":     float64(opt.interval.Nanoseconds()),
				"shard-identical": identical,
				"shard-workers":   float64(len(opt.checkWorkers)),
			},
		})
	}
	return out
}

// parseLinksList parses a comma-separated -scale-links value.
func parseLinksList(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("scale: bad links value %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("scale: empty links list")
	}
	return out, nil
}

// cmdScale is the runbook entry point: solve one generated instance per
// requested size under the deadline policy and report how it went.
func cmdScale(args []string) error {
	fs := flag.NewFlagSet("scale", flag.ExitOnError)
	opt := defaultScaleOptions()
	seed := fs.Uint64("seed", opt.seed, "generator seed (instances are pure functions of it)")
	linksList := fs.String("links", "1000,5000,10000", "comma-separated instance sizes (total directed links)")
	pairsPerLink := fs.Int("pairs-per-link", 0, "OD pairs per link (0 = generator default, 100·links capped by the edge set)")
	budgetFrac := fs.Float64("budget-frac", opt.budgetFrac, "θ as a fraction of the instance's maximum sampled rate")
	interval := fs.Duration("interval", opt.interval, "measurement interval the deadline policy defends")
	workers := workersFlag(fs)
	fs.Parse(args)
	if err := checkWorkers(fs, *workers); err != nil {
		return err
	}
	links, err := parseLinksList(*linksList)
	if err != nil {
		return err
	}
	opt.seed = *seed
	opt.links = links
	opt.pairsPerLink = *pairsPerLink
	opt.budgetFrac = *budgetFrac
	opt.interval = *interval
	opt.workers = *workers

	results, err := runScaleSuite(opt, logfStderr)
	if err != nil {
		return err
	}
	fmt.Printf("%8s %10s %10s %12s %7s %9s %12s %6s %10s\n",
		"links", "pairs", "nnz", "solve", "iters", "mode", "gap", "shard", "peak-rss")
	for _, r := range results {
		mode := "exact"
		if r.Approximated {
			mode = "approx"
		}
		shard := "ok"
		if !r.ShardIdentical {
			shard = "DRIFT"
		}
		fmt.Printf("%8d %10d %10d %12v %7d %9s %12.4g %6s %9.1fM\n",
			r.Links, r.Pairs, r.NNZ, r.SolveWall.Round(time.Millisecond), r.Iterations,
			mode, r.GapBound, shard, float64(r.PeakRSS)/(1<<20))
	}
	return nil
}

func logfStderr(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
}
