package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"netsamp/internal/control"
	"netsamp/internal/core"
	"netsamp/internal/daemon"
	"netsamp/internal/faults"
	"netsamp/internal/ingest"
)

// cmdServe runs the monitoring control loop as a supervised, crash-safe
// daemon: per-interval re-optimization under an injected fault plan,
// write-ahead journaling of every decision, periodic checkpointing, and
// graceful drain on SIGINT/SIGTERM. A restarted daemon resumes from the
// newest valid checkpoint and reproduces the decision sequence of an
// uninterrupted run bit-exactly.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	dir := fs.String("dir", "", "persistence directory for checkpoints and the decision journal (required)")
	theta := fs.Float64("theta", 100000, "budget θ in packets per 5-minute interval")
	seed := fs.Uint64("seed", 7, "master seed of traffic synthesis and fault draws")
	intervals := fs.Int("intervals", 0, "intervals to run before exiting (0 = run until a signal)")
	checkpoint := fs.Int("checkpoint", 8, "checkpoint cadence in intervals")
	workers := workersFlag(fs)
	alpha := fs.Float64("alpha", 0.5, "EWMA load-smoothing weight in (0, 1]")
	gain := fs.Float64("switchgain", 0.01, "hysteresis: minimum relative gain to change the monitor set")
	revive := fs.Int("revive", 2, "healthy intervals a recovered monitor owes before readmission")
	solveTimeout := fs.Duration("solve-timeout", 0, "per-interval solver wall-clock bound (0 = none)")
	robust := fs.String("robust", "off", "robust solving posture: off, pessimistic or optimistic")
	explore := fs.Float64("explore", 0.1, "budget fraction reserved for probing uncertain links (robust mode)")
	widen := fs.Float64("widen", 1.3, "per-unobserved-interval confidence widening factor (robust mode)")
	crash := fs.Float64("crash", 0, "per-interval monitor crash probability")
	clamp := fs.Float64("clamp", 0, "per-interval per-link rate-clamp probability")
	overrun := fs.Float64("overrun", 0, "per-interval solver overrun probability")
	drift := fs.Float64("drift", 0, "per-interval load random-walk volatility (load drift fault)")
	driftStep := fs.Float64("drift-step", 0, "per-interval per-link step-change probability (load drift fault)")
	maxFailures := fs.Int("max-failures", 5, "consecutive crashes (without a checkpoint in between) before giving up")
	backoff := fs.Duration("backoff", 100*time.Millisecond, "initial restart backoff (doubles per failure)")
	maxBackoff := fs.Duration("max-backoff", 30*time.Second, "restart backoff ceiling")
	ingestAddr := fs.String("ingest", "", "UDP listen address for live NetFlow ingest (empty = synthetic worlds only); enabling it disables bit-identical replay cross-checks")
	ingestShards := fs.Int("ingest-shards", 4, "collector shards, each with its own ring and worker")
	ingestRing := fs.Int("ingest-ring", 1024, "datagram ring capacity per shard (rounded up to a power of two)")
	ingestPolicy := fs.String("ingest-policy", "drop-newest", "overload policy: drop-newest or block")
	ingestCapacity := fs.Int("ingest-capacity", 0, "per-shard record budget per second (0 = unthrottled)")
	fs.Parse(args)
	if err := checkWorkers(fs, *workers); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("serve needs -dir <persistence directory>")
	}
	mode, err := core.RobustModeByName(*robust)
	if err != nil {
		return err
	}
	var robustOpts control.RobustOptions
	if mode != core.RobustOff {
		robustOpts = control.RobustOptions{
			Mode:            mode,
			ExplorationFrac: *explore,
			WidenFactor:     *widen,
		}
	}

	logf := func(format string, a ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", a...)
	}
	cfg := daemon.Config{
		Dir:             *dir,
		Seed:            *seed,
		Theta:           *theta,
		Intervals:       *intervals,
		CheckpointEvery: *checkpoint,
		Workers:         *workers,
		SmoothAlpha:     *alpha,
		SwitchGain:      *gain,
		ReviveAfter:     *revive,
		SolveTimeout:    *solveTimeout,
		Robust:          robustOpts,
		Faults: faults.Config{
			MonitorCrash:  *crash,
			RateClamp:     *clamp,
			SolverOverrun: *overrun,
			DriftVol:      *drift,
			DriftStep:     *driftStep,
		},
		Logf: logf,
	}
	// A live ingest tier feeds its record-loss fraction into every step:
	// overload and wire loss widen the controller's confidence instead
	// of being trusted at face value. The probe's readings are not
	// replayable, so the daemon drops its journal cross-check.
	if *ingestAddr != "" {
		policy, err := ingest.ParsePolicy(*ingestPolicy)
		if err != nil {
			return err
		}
		col, err := ingest.New(ingest.Config{
			Shards:           *ingestShards,
			RingSize:         *ingestRing,
			Policy:           policy,
			CapacityPerShard: *ingestCapacity,
			Logf:             logf,
		})
		if err != nil {
			return err
		}
		if err := col.Listen(*ingestAddr); err != nil {
			return err
		}
		defer func() {
			col.Close()
			v := col.Snapshot()
			logf("ingest: %d datagrams, %d records (%d delivered, %d dropped, %d lost upstream), loss fraction %.4f",
				v.Datagrams, v.Records, v.Delivered, v.Dropped, v.LostRecords, v.LossFraction)
		}()
		logf("ingest: listening on %s (%d shards, ring %d, policy %s)", col.Addr(), col.Shards(), *ingestRing, policy)
		cfg.LossProbe = col.LossFraction
	}
	sup := &daemon.Supervisor{
		MaxFailures: *maxFailures,
		Backoff:     *backoff,
		MaxBackoff:  *maxBackoff,
		Logf:        logf,
	}

	// SIGINT/SIGTERM cancel the context; the loop finishes the in-flight
	// interval, writes a final checkpoint, and Serve returns nil — so a
	// signalled shutdown exits 0 with a resumable state on disk.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	return daemon.Serve(ctx, cfg, sup)
}
