package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// BenchResult is one parsed benchmark line: the benchmark name (with the
// -N GOMAXPROCS suffix stripped), the measured iteration count, and every
// reported metric — ns/op, B/op, allocs/op, plus custom b.ReportMetric
// series such as solver-iters/op.
type BenchResult struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// BenchReport is the BENCH_results.json schema.
type BenchReport struct {
	GoVersion  string        `json:"go_version"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	Pattern    string        `json:"pattern"`
	Benchtime  string        `json:"benchtime"`
	Count      int           `json:"count"`
	Benchmarks []BenchResult `json:"benchmarks"`
}

// cmdBench runs the module's tier-1 benchmark suite under `go test
// -bench -benchmem` — or, with -scale, the in-process scale suite — and
// emits the parsed results as JSON, so CI can archive them and
// regression tooling can diff runs without re-parsing the textual
// benchmark format. Results merge into an existing output file by
// benchmark name (fresh results win), so the scale suite and the go
// test benchmarks accumulate in one BENCH_results.json instead of
// clobbering each other.
func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	pattern := fs.String("pattern", ".", "benchmark name pattern (go test -bench)")
	benchtime := fs.String("benchtime", "1s", "per-benchmark measuring time or iteration count (e.g. 1s, 100x)")
	count := fs.Int("count", 1, "repetitions per benchmark")
	out := fs.String("o", "BENCH_results.json", "output file (- for stdout)")
	pkg := fs.String("pkg", "", "package to benchmark (default: the module root)")
	scale := fs.Bool("scale", false, "run the scale suite (generated ISP-like instances) instead of go test benchmarks")
	scaleLinks := fs.String("scale-links", "1000,5000,10000", "comma-separated instance sizes for -scale")
	scalePairs := fs.Int("scale-pairs-per-link", 0, "OD pairs per link for -scale (0 = generator default)")
	scaleInterval := fs.Duration("scale-interval", 5*time.Minute, "measurement interval the -scale deadline policy defends")
	fs.Parse(args)
	if *count < 1 {
		return fmt.Errorf("bench: -count %d, want >= 1", *count)
	}

	report := BenchReport{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Pattern:   *pattern,
		Benchtime: *benchtime,
		Count:     *count,
	}
	if *scale {
		opt := defaultScaleOptions()
		links, err := parseLinksList(*scaleLinks)
		if err != nil {
			return err
		}
		opt.links = links
		opt.pairsPerLink = *scalePairs
		opt.interval = *scaleInterval
		results, err := runScaleSuite(opt, func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", a...)
		})
		if err != nil {
			return err
		}
		report.Pattern = "ScaleSolve"
		report.Benchmarks = scaleBenchResults(opt, results)
	} else {
		dir := *pkg
		if dir == "" {
			root, err := moduleRoot()
			if err != nil {
				return err
			}
			dir = root
		}

		cmd := exec.Command("go", "test", "-run=NONE",
			"-bench="+*pattern, "-benchmem",
			"-benchtime="+*benchtime, "-count="+strconv.Itoa(*count), ".")
		cmd.Dir = dir
		cmd.Stderr = os.Stderr
		raw, err := cmd.Output()
		if err != nil {
			return fmt.Errorf("bench: go test: %w\n%s", err, raw)
		}
		fmt.Fprint(os.Stderr, string(raw))

		report.Benchmarks, err = parseBenchOutput(string(raw))
		if err != nil {
			return err
		}
		if len(report.Benchmarks) == 0 {
			return fmt.Errorf("bench: no benchmark matched pattern %q", *pattern)
		}
	}

	if *out != "-" {
		report = mergeBenchReport(*out, report)
	}
	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if *out == "-" {
		_, err = os.Stdout.Write(blob)
		return err
	}
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "bench: wrote %d results to %s\n", len(report.Benchmarks), *out)
	return nil
}

// mergeBenchReport folds an existing report file into fresh: benchmarks
// union by name with fresh results winning, sorted by name for stable
// diffs. The fresh run's metadata (pattern, benchtime, toolchain) wins;
// an unreadable or malformed existing file is treated as absent rather
// than blocking the new results.
func mergeBenchReport(path string, fresh BenchReport) BenchReport {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fresh
	}
	var old BenchReport
	if json.Unmarshal(raw, &old) != nil {
		return fresh
	}
	seen := make(map[string]bool, len(fresh.Benchmarks))
	for _, b := range fresh.Benchmarks {
		seen[b.Name] = true
	}
	for _, b := range old.Benchmarks {
		if !seen[b.Name] {
			fresh.Benchmarks = append(fresh.Benchmarks, b)
		}
	}
	sort.Slice(fresh.Benchmarks, func(i, j int) bool {
		return fresh.Benchmarks[i].Name < fresh.Benchmarks[j].Name
	})
	return fresh
}

// parseBenchOutput extracts the benchmark lines from go test output. A
// line reads: name, iteration count, then (value, unit) pairs.
func parseBenchOutput(out string) ([]BenchResult, error) {
	var results []BenchResult
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 4 || len(f)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			continue
		}
		name := f[0]
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i] // strip the -GOMAXPROCS suffix
			}
		}
		r := BenchResult{Name: name, Iterations: iters, Metrics: make(map[string]float64)}
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bench: malformed line %q: %v", line, err)
			}
			r.Metrics[f[i+1]] = v
		}
		results = append(results, r)
	}
	return results, nil
}

// moduleRoot walks up from the working directory to the enclosing go.mod,
// so `netsamp bench` works from anywhere inside the checkout.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("bench: no go.mod above the working directory (use -pkg)")
		}
		dir = parent
	}
}
