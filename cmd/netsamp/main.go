// Command netsamp regenerates the paper's evaluation on the synthetic
// GEANT scenario.
//
// Usage:
//
//	netsamp figure1  [-points N]
//	netsamp table1   [-theta N] [-trials N] [-seed N] [-csv] [-abilene]
//	netsamp figure2  [-trials N] [-seed N] [-csv] [-ext] [-workers N]
//	netsamp convergence [-runs N] [-seed N] [-nopre] [-workers N]
//	netsamp accesslink  [-theta N]
//	netsamp maxmin   [-theta N]
//	netsamp detect   [-theta N] [-size N] [-workers N]
//	netsamp tm       [-theta N] [-trials N] [-workers N]
//	netsamp dynamic  [-intervals N] [-theta N] [-workers N]
//	netsamp degrade  [-intervals N] [-theta N] [-overrun P] [-csv] [-workers N]
//	netsamp regret   [-intervals N] [-theta N] [-drift V] [-step P] [-explore F] [-widen F] [-csv] [-workers N]
//	netsamp coordinate [-trials N] [-seed N] [-csv] [-workers N]
//	netsamp saturation [-shards N] [-ticks N] [-capacity N] [-seed N] [-csv]
//	netsamp serve    -dir DIR [-theta N] [-seed N] [-intervals N] [-checkpoint N] [-workers N]
//	netsamp optimize -f network.netsamp [-model M] [-maxmin] [-json]
//	netsamp bench    [-pattern RE] [-benchtime T] [-count N] [-o FILE]
//	netsamp topo
//	netsamp all
//
// Global flags, given before the command, profile whatever the command
// runs:
//
//	netsamp -cpuprofile cpu.out -memprofile mem.out figure2 -workers 8
//
// Every experiment is deterministic for a given seed, and the studies
// that accept -workers produce bit-identical output for every worker
// count (per-job RNG streams are split-seeded by job index). -workers
// must be >= 0; 0 means GOMAXPROCS.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"netsamp/internal/core"
	"netsamp/internal/eval"
	"netsamp/internal/geant"
	"netsamp/internal/plan"
	"netsamp/internal/spec"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// run is main with an exit code, so the profile-writing defers execute
// before the process exits.
func run(argv []string) int {
	global := flag.NewFlagSet("netsamp", flag.ContinueOnError)
	global.SetOutput(os.Stderr)
	global.Usage = usage
	cpuprofile := global.String("cpuprofile", "", "write a CPU profile of the command to `file`")
	memprofile := global.String("memprofile", "", "write a heap profile taken after the command to `file`")
	// Parse stops at the first non-flag argument, so global flags come
	// before the command and per-command flags after it.
	if err := global.Parse(argv); err != nil {
		return 2
	}
	if global.NArg() < 1 {
		usage()
		return 2
	}
	cmd, args := global.Arg(0), global.Args()[1:]
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "netsamp: -cpuprofile: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "netsamp: -cpuprofile: %v\n", err)
			f.Close()
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "netsamp: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "netsamp: -memprofile: %v\n", err)
			}
		}()
	}
	if err := dispatch(cmd, args); err != nil {
		fmt.Fprintf(os.Stderr, "netsamp %s: %v\n", cmd, err)
		return 1
	}
	return 0
}

func dispatch(cmd string, args []string) error {
	var err error
	switch cmd {
	case "figure1":
		err = cmdFigure1(args)
	case "table1":
		err = cmdTable1(args)
	case "figure2":
		err = cmdFigure2(args)
	case "convergence":
		err = cmdConvergence(args)
	case "accesslink":
		err = cmdAccessLink(args)
	case "maxmin":
		err = cmdMaxMin(args)
	case "detect":
		err = cmdDetect(args)
	case "tm":
		err = cmdTM(args)
	case "dynamic":
		err = cmdDynamic(args)
	case "degrade":
		err = cmdDegrade(args)
	case "regret":
		err = cmdRegret(args)
	case "coordinate":
		err = cmdCoordinate(args)
	case "saturation":
		err = cmdSaturation(args)
	case "serve":
		err = cmdServe(args)
	case "optimize":
		err = cmdOptimize(args)
	case "report":
		err = cmdReport(args)
	case "export-spec":
		err = cmdExportSpec(args)
	case "bench":
		err = cmdBench(args)
	case "topo":
		err = cmdTopo(args)
	case "scale":
		err = cmdScale(args)
	case "all":
		err = cmdAll(args)
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "netsamp: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	return err
}

func usage() {
	fmt.Fprintln(os.Stderr, `netsamp — optimal network-wide sampling (CoNEXT 2006 reproduction)

commands:
  figure1      utility function M(ρ) for two mean OD sizes (paper Fig. 1)
  table1       optimal sampling plan for the JANET task (paper Table I)
  figure2      accuracy vs capacity θ, optimal vs UK-links-only (paper Fig. 2)
  convergence  solver statistics over randomized instances (paper §IV-D)
  accesslink   capacity cost of access-link-only monitoring (paper §V-C)
  maxmin       max-min variant of the JANET task (paper's future work)
  detect       anomaly-detection placement (detection-probability utility)
  tm           traffic-matrix estimation: SNMP counters vs optimized sampling
  dynamic      static vs re-optimized plans under traffic/routing dynamics
  degrade      accuracy under monitor crashes and export loss, naive vs graceful
  regret       utility regret under load drift: plug-in vs uncertainty-aware control
  coordinate   coordinated (cSamp-style) vs independent sampling across θ
  saturation   ingest-tier graceful degradation at 1x/2x/4x offered load (deterministic)
  serve        supervised control-loop daemon with crash-safe checkpointing
  optimize     solve a user-provided scenario file (-f network.netsamp)
  report       run every experiment and emit a markdown report
  export-spec  dump a built-in scenario as an editable .netsamp file
  bench        run the benchmark suite and emit BENCH_results.json (-scale for the scale suite)
  scale        solve generated ISP-scale instances under the deadline policy
  topo         emit the synthetic GEANT topology in DOT format
  all          run every experiment in sequence

global flags (before the command): -cpuprofile FILE, -memprofile FILE`)
}

func scenarioFlags(fs *flag.FlagSet) *uint64 {
	return fs.Uint64("seed", 1, "scenario seed (background traffic jitter)")
}

// workersFlag registers -workers for the experiments that run on the
// engine's worker pool. Results are identical for every worker count;
// the flag only trades wall-clock time for CPU.
func workersFlag(fs *flag.FlagSet) *int {
	return fs.Int("workers", 0, "parallel solver workers, must be >= 0 (0 = GOMAXPROCS); results are worker-count independent")
}

// checkWorkers rejects negative -workers values with a usage error
// before any work starts.
func checkWorkers(fs *flag.FlagSet, workers int) error {
	if workers < 0 {
		fs.Usage()
		return fmt.Errorf("invalid -workers %d: must be >= 0 (0 = GOMAXPROCS)", workers)
	}
	return nil
}

func cmdFigure1(args []string) error {
	fs := flag.NewFlagSet("figure1", flag.ExitOnError)
	points := fs.Int("points", 41, "number of abscissa points")
	fs.Parse(args)
	return eval.RenderFigure1(os.Stdout, eval.Figure1(*points))
}

func cmdTable1(args []string) error {
	fs := flag.NewFlagSet("table1", flag.ExitOnError)
	theta := fs.Float64("theta", 100000, "budget θ in packets per 5-minute interval")
	trials := fs.Int("trials", 20, "sampling experiments per OD pair")
	csv := fs.Bool("csv", false, "emit CSV instead of a text table")
	abilene := fs.Bool("abilene", false, "use the Abilene backbone instead of GEANT")
	seed := scenarioFlags(fs)
	fs.Parse(args)
	build := geant.Build
	if *abilene {
		build = geant.BuildAbilene
	}
	s, err := build(*seed)
	if err != nil {
		return err
	}
	res, err := eval.Table1(s, *theta, *trials, *seed+1000)
	if err != nil {
		return err
	}
	if *csv {
		header, rows := eval.Table1CSV(res)
		return eval.WriteCSV(os.Stdout, header, rows)
	}
	return eval.RenderTable1(os.Stdout, res)
}

func cmdFigure2(args []string) error {
	fs := flag.NewFlagSet("figure2", flag.ExitOnError)
	trials := fs.Int("trials", 20, "sampling experiments per OD pair per θ")
	csv := fs.Bool("csv", false, "emit CSV instead of a text table")
	ext := fs.Bool("ext", false, "add uniform and two-phase-greedy baseline series")
	seed := scenarioFlags(fs)
	workers := workersFlag(fs)
	fs.Parse(args)
	if err := checkWorkers(fs, *workers); err != nil {
		return err
	}
	s, err := geant.Build(*seed)
	if err != nil {
		return err
	}
	if *ext {
		pts, err := eval.Figure2ExtendedCtx(context.Background(), s, eval.DefaultThetas(), *trials, *seed+2000, *workers)
		if err != nil {
			return err
		}
		return eval.RenderFigure2Extended(os.Stdout, pts)
	}
	points, err := eval.Figure2Ctx(context.Background(), s, eval.DefaultThetas(), *trials, *seed+2000, *workers)
	if err != nil {
		return err
	}
	if *csv {
		header, rows := eval.Figure2CSV(points)
		return eval.WriteCSV(os.Stdout, header, rows)
	}
	return eval.RenderFigure2(os.Stdout, points)
}

func cmdConvergence(args []string) error {
	fs := flag.NewFlagSet("convergence", flag.ExitOnError)
	runs := fs.Int("runs", 200, "number of randomized solver runs (paper: 200)")
	nopre := fs.Bool("nopre", false, "disable the preconditioner (the paper's plain method)")
	seed := scenarioFlags(fs)
	workers := workersFlag(fs)
	fs.Parse(args)
	if err := checkWorkers(fs, *workers); err != nil {
		return err
	}
	s, err := geant.Build(*seed)
	if err != nil {
		return err
	}
	res, err := eval.ConvergenceStudyCtx(context.Background(), s, *runs, *seed+3000,
		core.Options{DisablePreconditioner: *nopre}, *workers)
	if err != nil {
		return err
	}
	return eval.RenderConvergence(os.Stdout, res)
}

func cmdAccessLink(args []string) error {
	fs := flag.NewFlagSet("accesslink", flag.ExitOnError)
	theta := fs.Float64("theta", 100000, "budget θ in packets per interval")
	seed := scenarioFlags(fs)
	fs.Parse(args)
	s, err := geant.Build(*seed)
	if err != nil {
		return err
	}
	res, err := eval.AccessLinkComparison(s, *theta)
	if err != nil {
		return err
	}
	return eval.RenderAccessComparison(os.Stdout, res)
}

func cmdMaxMin(args []string) error {
	fs := flag.NewFlagSet("maxmin", flag.ExitOnError)
	theta := fs.Float64("theta", 100000, "budget θ in packets per interval")
	seed := scenarioFlags(fs)
	fs.Parse(args)
	s, err := geant.Build(*seed)
	if err != nil {
		return err
	}
	prob, _, err := plan.Build(plan.Input{
		Matrix:       s.Matrix,
		Loads:        s.Loads,
		Candidates:   s.MonitorLinks,
		InvMeanSizes: s.UtilityParams(eval.Interval),
		Budget:       core.BudgetPerInterval(*theta, eval.Interval),
	})
	if err != nil {
		return err
	}
	sum, err := core.Solve(prob, core.Options{})
	if err != nil {
		return err
	}
	mm, err := core.SolveMaxMin(prob, core.MaxMinOptions{})
	if err != nil {
		return err
	}
	exact, err := core.SolveMaxMinExact(prob, 0)
	if err != nil {
		return err
	}
	minOf := func(u []float64) float64 {
		m := u[0]
		for _, v := range u {
			if v < m {
				m = v
			}
		}
		return m
	}
	fmt.Printf("Max-min variant (paper's future-work objective) at θ = %.0f\n\n", *theta)
	fmt.Printf("%-28s %14s %14s %14s\n", "", "sum objective", "maxmin heur", "maxmin exact")
	fmt.Printf("%-28s %14.4f %14.4f %14.4f\n", "worst OD-pair utility",
		minOf(sum.Utilities), minOf(mm.Utilities), minOf(exact.Utilities))
	fmt.Printf("%-28s %14d %14d %14d\n", "active monitors",
		len(sum.ActiveMonitors()), len(mm.ActiveMonitors()), len(exact.ActiveMonitors()))
	fmt.Printf("\nper-pair utilities:\n")
	for k := range s.Pairs {
		fmt.Printf("  %-12s %8.4f %8.4f %8.4f\n", s.Pairs[k].Name,
			sum.Utilities[k], mm.Utilities[k], exact.Utilities[k])
	}
	return nil
}

func cmdTM(args []string) error {
	fs := flag.NewFlagSet("tm", flag.ExitOnError)
	theta := fs.Float64("theta", 100000, "budget in packets per interval")
	trials := fs.Int("trials", 20, "sampling experiments per OD pair")
	seed := scenarioFlags(fs)
	workers := workersFlag(fs)
	fs.Parse(args)
	if err := checkWorkers(fs, *workers); err != nil {
		return err
	}
	s, err := geant.Build(*seed)
	if err != nil {
		return err
	}
	res, err := eval.TMStudyCtx(context.Background(), s, *theta, *trials, *seed+5000, *workers)
	if err != nil {
		return err
	}
	return eval.RenderTM(os.Stdout, res)
}

func cmdDetect(args []string) error {
	fs := flag.NewFlagSet("detect", flag.ExitOnError)
	theta := fs.Float64("theta", 100000, "budget in packets per interval")
	size := fs.Int("size", 500, "anomalous event footprint in packets per interval")
	seed := scenarioFlags(fs)
	workers := workersFlag(fs)
	fs.Parse(args)
	if err := checkWorkers(fs, *workers); err != nil {
		return err
	}
	s, err := geant.Build(*seed)
	if err != nil {
		return err
	}
	res, err := eval.DetectionStudyCtx(context.Background(), s, *theta, *size, *workers)
	if err != nil {
		return err
	}
	return eval.RenderDetection(os.Stdout, res)
}

func cmdDynamic(args []string) error {
	fs := flag.NewFlagSet("dynamic", flag.ExitOnError)
	intervals := fs.Int("intervals", 24, "number of 5-minute intervals to simulate")
	theta := fs.Float64("theta", 100000, "budget \u03b8 in packets per interval")
	seed := scenarioFlags(fs)
	workers := workersFlag(fs)
	fs.Parse(args)
	if err := checkWorkers(fs, *workers); err != nil {
		return err
	}
	s, err := geant.Build(*seed)
	if err != nil {
		return err
	}
	res, err := eval.DynamicStudyCtx(context.Background(), s, *intervals, *theta, *seed+4000, *workers)
	if err != nil {
		return err
	}
	return eval.RenderDynamic(os.Stdout, res)
}

func cmdDegrade(args []string) error {
	fs := flag.NewFlagSet("degrade", flag.ExitOnError)
	intervals := fs.Int("intervals", 8, "simulated 5-minute intervals per grid point")
	theta := fs.Float64("theta", 100000, "budget θ in packets per interval")
	overrun := fs.Float64("overrun", 0.2, "per-interval solver overrun probability (0 disables)")
	csv := fs.Bool("csv", false, "emit CSV instead of a text table")
	seed := scenarioFlags(fs)
	workers := workersFlag(fs)
	fs.Parse(args)
	if err := checkWorkers(fs, *workers); err != nil {
		return err
	}
	if *overrun < 0 || *overrun > 1 {
		fs.Usage()
		return fmt.Errorf("invalid -overrun %v: must be in [0, 1]", *overrun)
	}
	s, err := geant.Build(*seed)
	if err != nil {
		return err
	}
	cfg := eval.DegradeConfig{
		Intervals: *intervals, Theta: *theta, OverrunRate: *overrun,
		Seed: *seed + 6000, Workers: *workers,
	}
	if *overrun == 0 {
		cfg.OverrunRate = -1 // explicit zero, not "use the default"
	}
	res, err := eval.DegradationStudy(context.Background(), s, cfg)
	if err != nil {
		return err
	}
	if *csv {
		header, rows := eval.DegradeCSV(res)
		return eval.WriteCSV(os.Stdout, header, rows)
	}
	return eval.RenderDegrade(os.Stdout, res)
}

func cmdRegret(args []string) error {
	fs := flag.NewFlagSet("regret", flag.ExitOnError)
	intervals := fs.Int("intervals", 24, "simulated 5-minute intervals per grid point")
	theta := fs.Float64("theta", 100000, "budget θ in packets per interval")
	drift := fs.Float64("drift", 0.3, "true-load random-walk volatility per interval (0 disables)")
	step := fs.Float64("step", 0.1, "per-interval probability of a step change in a link's true load (0 disables)")
	explore := fs.Float64("explore", 0.1, "exploration reserve as a fraction of θ in [0, 0.5] (0 disables)")
	widen := fs.Float64("widen", 1.3, "tracker confidence widening per unobserved interval (>= 1)")
	killat := fs.Int("killat", 0, "kill and restore the robust controller before this interval (0 disables; output must not change)")
	csv := fs.Bool("csv", false, "emit CSV instead of a text table")
	seed := scenarioFlags(fs)
	workers := workersFlag(fs)
	fs.Parse(args)
	if err := checkWorkers(fs, *workers); err != nil {
		return err
	}
	if *drift < 0 || *step < 0 || *step > 1 {
		fs.Usage()
		return fmt.Errorf("invalid -drift %v / -step %v: want drift >= 0 and step in [0, 1]", *drift, *step)
	}
	if *explore < 0 || *explore > 0.5 {
		fs.Usage()
		return fmt.Errorf("invalid -explore %v: must be in [0, 0.5]", *explore)
	}
	if *widen < 1 {
		fs.Usage()
		return fmt.Errorf("invalid -widen %v: must be >= 1", *widen)
	}
	s, err := geant.Build(*seed)
	if err != nil {
		return err
	}
	cfg := eval.RegretConfig{
		Intervals: *intervals, Theta: *theta,
		DriftVol: *drift, DriftStep: *step,
		ExplorationFrac: *explore, WidenFactor: *widen,
		KillAt: *killat, Seed: *seed + 7000, Workers: *workers,
	}
	// The flag defaults mirror the study defaults, but an explicit zero
	// means "disable", not "use the default".
	if *drift == 0 {
		cfg.DriftVol = -1
	}
	if *step == 0 {
		cfg.DriftStep = -1
	}
	if *explore == 0 {
		cfg.ExplorationFrac = -1
	}
	res, err := eval.RegretStudy(context.Background(), s, cfg)
	if err != nil {
		return err
	}
	if *csv {
		header, rows := eval.RegretCSV(res)
		return eval.WriteCSV(os.Stdout, header, rows)
	}
	return eval.RenderRegret(os.Stdout, res)
}

func cmdSaturation(args []string) error {
	fs := flag.NewFlagSet("saturation", flag.ExitOnError)
	shards := fs.Int("shards", 4, "collector shards")
	ring := fs.Int("ring", 256, "datagram ring capacity per shard")
	capacity := fs.Int("capacity", 2048, "record budget per shard per tick")
	ticks := fs.Int("ticks", 200, "injection ticks per grid point")
	exporters := fs.Int("exporters", 8, "synthetic exporters")
	loss := fs.Float64("loss", 0.01, "per-datagram wire-loss probability (0 disables)")
	dup := fs.Float64("dup", 0.005, "per-datagram duplicate probability (0 disables)")
	csv := fs.Bool("csv", false, "emit CSV instead of a text table")
	seed := scenarioFlags(fs)
	fs.Parse(args)
	cfg := eval.SaturationConfig{
		Shards: *shards, RingSize: *ring, CapacityPerTick: *capacity,
		Ticks: *ticks, Exporters: *exporters, Seed: *seed + 8000,
		LossP: *loss, DupP: *dup,
	}
	// The flag defaults mirror the study defaults, but an explicit zero
	// means "disable", not "use the default".
	if *loss == 0 {
		cfg.LossP = -1
	}
	if *dup == 0 {
		cfg.DupP = -1
	}
	res, err := eval.SaturationStudy(cfg)
	if err != nil {
		return err
	}
	if *csv {
		header, rows := eval.SaturationCSV(res)
		return eval.WriteCSV(os.Stdout, header, rows)
	}
	return eval.RenderSaturation(os.Stdout, res)
}

func cmdOptimize(args []string) error {
	fs := flag.NewFlagSet("optimize", flag.ExitOnError)
	file := fs.String("f", "", "scenario file (see internal/spec for the format)")
	modelName := fs.String("model", "linear", "effective-rate model: linear (paper's working model (7)), exact (product model (1)), or coordinated (cSamp-style hash partitioning)")
	maxmin := fs.Bool("maxmin", false, "maximize the worst pair's utility (certified LP bisection) instead of the sum")
	jsonOut := fs.Bool("json", false, "emit the plan as JSON (for automation)")
	fs.Parse(args)
	if *file == "" {
		return fmt.Errorf("optimize needs -f <scenario file>")
	}
	model, err := core.ModelByName(*modelName)
	if err != nil {
		return err
	}
	f, err := os.Open(*file)
	if err != nil {
		return err
	}
	defer f.Close()
	sc, err := spec.Parse(f)
	if err != nil {
		return err
	}
	res, err := sc.Solve(core.Options{}, model)
	if err != nil {
		return err
	}
	sol := res.Solution
	if *maxmin {
		prob, _, err := plan.Build(plan.Input{
			Matrix:       res.Matrix,
			Loads:        res.Loads,
			Candidates:   res.Candidates,
			InvMeanSizes: invSizesOf(sc),
			Budget:       core.BudgetPerInterval(sc.Theta, sc.Interval),
		})
		if err != nil {
			return err
		}
		sol, err = core.SolveMaxMinExact(prob, 0)
		if err != nil {
			return err
		}
		res.Rates = plan.RatesByLink(sol, res.Candidates)
	}
	if *jsonOut {
		type linkJSON struct {
			Link    string  `json:"link"`
			Rate    float64 `json:"rate"`
			Load    float64 `json:"load_pkts_per_sec"`
			Sampled float64 `json:"sampled_pkts_per_sec"`
		}
		type pairJSON struct {
			Pair    string  `json:"pair"`
			Rho     float64 `json:"effective_rate"`
			Utility float64 `json:"utility"`
		}
		out := struct {
			Theta     float64    `json:"theta_pkts_per_interval"`
			Interval  float64    `json:"interval_seconds"`
			Converged bool       `json:"converged"`
			Links     []linkJSON `json:"links"`
			Pairs     []pairJSON `json:"pairs"`
		}{Theta: sc.Theta, Interval: sc.Interval, Converged: sol.Stats.Converged}
		for _, lid := range res.Candidates {
			p := res.Rates[lid]
			out.Links = append(out.Links, linkJSON{
				Link: sc.Graph.LinkName(lid), Rate: p,
				Load: res.Loads[lid], Sampled: p * res.Loads[lid],
			})
		}
		for k := range sc.Pairs {
			out.Pairs = append(out.Pairs, pairJSON{
				Pair: sc.Pairs[k].Name, Rho: sol.Rho[k], Utility: sol.Utilities[k],
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}
	fmt.Printf("solved: %d candidate links, \u03b8 = %.0f pkts / %.0fs, converged=%v (%d iterations)\n\n",
		len(res.Candidates), sc.Theta, sc.Interval, sol.Stats.Converged, sol.Stats.Iterations)
	fmt.Printf("%-16s %12s %14s %14s\n", "link", "rate p_i", "load (pkt/s)", "sampled pkt/s")
	for _, lid := range res.Candidates {
		p := res.Rates[lid]
		if p == 0 {
			fmt.Printf("%-16s %12s %14.0f %14s\n", sc.Graph.LinkName(lid), "off", res.Loads[lid], "-")
			continue
		}
		fmt.Printf("%-16s %12.6f %14.0f %14.2f\n", sc.Graph.LinkName(lid), p, res.Loads[lid], p*res.Loads[lid])
	}
	fmt.Printf("\n%-20s %14s %10s\n", "OD pair", "effective rho", "utility")
	for k := range sc.Pairs {
		fmt.Printf("%-20s %14.6f %10.4f\n", sc.Pairs[k].Name, sol.Rho[k], sol.Utilities[k])
	}
	return nil
}

func cmdReport(args []string) error {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	theta := fs.Float64("theta", 100000, "budget in packets per interval")
	trials := fs.Int("trials", 20, "sampling experiments per OD pair")
	seed := scenarioFlags(fs)
	fs.Parse(args)
	s, err := geant.Build(*seed)
	if err != nil {
		return err
	}
	return eval.WriteReport(os.Stdout, s, eval.ReportConfig{
		Theta:  *theta,
		Trials: *trials,
		Seed:   *seed,
	})
}

// invSizesOf recomputes the per-pair utility parameters of a scenario.
func invSizesOf(sc *spec.Scenario) []float64 {
	inv := make([]float64, len(sc.Pairs))
	for k := range sc.Pairs {
		inv[k] = 1 / (sc.Rates[k] * sc.Interval)
	}
	return inv
}

func cmdExportSpec(args []string) error {
	fs := flag.NewFlagSet("export-spec", flag.ExitOnError)
	theta := fs.Float64("theta", 100000, "budget written into the file")
	abilene := fs.Bool("abilene", false, "export the Abilene scenario instead of GEANT")
	seed := scenarioFlags(fs)
	fs.Parse(args)
	build := geant.Build
	if *abilene {
		build = geant.BuildAbilene
	}
	s, err := build(*seed)
	if err != nil {
		return err
	}
	return spec.Export(os.Stdout, s.Graph, s.Demands, s.Pairs, s.Rates, *theta, eval.Interval)
}

func cmdTopo(args []string) error {
	fs := flag.NewFlagSet("topo", flag.ExitOnError)
	seed := scenarioFlags(fs)
	fs.Parse(args)
	s, err := geant.Build(*seed)
	if err != nil {
		return err
	}
	_, err = fmt.Print(s.Graph.DOT())
	return err
}

func cmdAll(args []string) error {
	fmt.Println("=== Figure 1 ===")
	if err := cmdFigure1(nil); err != nil {
		return err
	}
	fmt.Println("\n=== Table I ===")
	if err := cmdTable1(nil); err != nil {
		return err
	}
	fmt.Println("\n=== Figure 2 ===")
	if err := cmdFigure2(nil); err != nil {
		return err
	}
	fmt.Println("\n=== Convergence (§IV-D) ===")
	if err := cmdConvergence(nil); err != nil {
		return err
	}
	fmt.Println("\n=== Access-link comparison (§V-C) ===")
	if err := cmdAccessLink(nil); err != nil {
		return err
	}
	fmt.Println("\n=== Traffic-matrix estimation comparison ===")
	if err := cmdTM(nil); err != nil {
		return err
	}
	fmt.Println("\n=== Anomaly-detection placement ===")
	if err := cmdDetect(nil); err != nil {
		return err
	}
	fmt.Println("\n=== Dynamic re-optimization ===")
	if err := cmdDynamic(nil); err != nil {
		return err
	}
	fmt.Println("\n=== Degradation under faults ===")
	if err := cmdDegrade(nil); err != nil {
		return err
	}
	fmt.Println("\n=== Regret under load drift ===")
	if err := cmdRegret(nil); err != nil {
		return err
	}
	fmt.Println("\n=== Max-min extension ===")
	return cmdMaxMin(nil)
}
