module netsamp

go 1.22
