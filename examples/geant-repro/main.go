// GEANT reproduction: the paper's evaluation task end to end.
//
// Builds the synthetic GEANT-2004 backbone, states the JANET measurement
// task (estimate the traffic from the UK research network to each of the
// 20 GEANT PoPs), solves for the optimal monitor set and sampling rates
// at θ = 100,000 packets per 5-minute interval, and then validates the
// plan by simulating 20 independent sampling experiments per OD pair —
// the procedure of the paper's Section V-B.
//
// Run with:
//
//	go run ./examples/geant-repro
package main

import (
	"fmt"
	"log"
	"os"

	"netsamp"
	"netsamp/internal/eval"
	"netsamp/internal/geant"
)

func main() {
	scenario, err := netsamp.BuildGEANT(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Synthetic GEANT: %d PoPs, %d unidirectional links, %d candidate monitors\n",
		scenario.Graph.NumNodes()-1, // minus the JANET customer node
		scenario.Graph.NumLinks()-2, // minus the duplex access circuit
		len(scenario.MonitorLinks))
	fmt.Printf("Measurement task: %d JANET OD pairs, %.0f pkt/s total\n\n",
		len(scenario.Pairs), geant.TotalJANETRate)

	result, err := eval.Table1(scenario, 100000, 20, 42)
	if err != nil {
		log.Fatal(err)
	}
	if err := eval.RenderTable1(os.Stdout, result); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nHow to read this against the paper's Table I: the optimum")
	fmt.Println("activates a small subset of links; each OD pair is sampled on at")
	fmt.Println("most two of them; the highest rates (~1%) sit on the lightly")
	fmt.Println("loaded circuits carrying the smallest OD pairs (FR->LU, CZ->SK);")
	fmt.Println("and the per-pair accuracy stays high and well balanced.")
}
