// Anomaly watch: why monitor placement must be re-optimized.
//
// The paper's motivation (Section I): traffic shifts and re-routing
// events quickly make a static monitor placement sub-optimal, which is
// why the problem should be reformulated as activating router-embedded
// monitors on demand.
//
// This example demonstrates the workflow on the GEANT scenario:
//
//  1. Solve the JANET task under normal conditions.
//  2. An anomaly appears: the JANET→LU pair collapses from 20 pkt/s to
//     2 pkt/s — a stealthy, low-rate flow the operator wants to keep
//     tracking (early anomaly detection) — while a failure of the FR–CH
//     circuit re-routes the Swiss/Italian traffic.
//  3. Re-route, recompute loads, re-optimize, and diff the two plans.
//
// Run with:
//
//	go run ./examples/anomaly-watch
package main

import (
	"fmt"
	"log"
	"sort"

	"netsamp"
	"netsamp/internal/eval"
)

func solve(s *netsamp.GEANTScenario, loads []float64, rates []float64) (map[netsamp.LinkID]float64, *netsamp.Solution) {
	inv := make([]float64, len(rates))
	for k, r := range rates {
		inv[k] = 1 / (r * eval.Interval)
	}
	prob, _, err := netsamp.BuildProblem(netsamp.PlanInput{
		Matrix:       s.Matrix,
		Loads:        loads,
		Candidates:   s.MonitorLinks,
		InvMeanSizes: inv,
		Budget:       netsamp.BudgetPerInterval(100000, eval.Interval),
	})
	if err != nil {
		log.Fatal(err)
	}
	sol, err := netsamp.Solve(prob, netsamp.Options{})
	if err != nil {
		log.Fatal(err)
	}
	return netsamp.RatesByLink(sol, s.MonitorLinks), sol
}

func printPlan(s *netsamp.GEANTScenario, rates map[netsamp.LinkID]float64) {
	var links []netsamp.LinkID
	for lid := range rates {
		links = append(links, lid)
	}
	sort.Slice(links, func(i, j int) bool { return links[i] < links[j] })
	for _, lid := range links {
		fmt.Printf("  %-8s p=%.6f\n", s.Graph.LinkName(lid), rates[lid])
	}
}

func main() {
	s, err := netsamp.BuildGEANT(1)
	if err != nil {
		log.Fatal(err)
	}

	before, solBefore := solve(s, s.Loads, s.Rates)
	fmt.Println("Plan under normal conditions:")
	printPlan(s, before)
	fmt.Printf("  worst-pair utility: %.4f\n\n", minOf(solBefore.Utilities))

	// --- The anomaly ---------------------------------------------------
	// JANET→LU collapses from 20 pkt/s to 2 pkt/s, and the FR–CH circuit
	// fails, re-routing the Swiss/Italian traffic through DE.
	rates := append([]float64(nil), s.Rates...)
	luIdx := len(rates) - 1 // JANET-LU is the last pair (Table I order)
	rates[luIdx] = 2

	frch, ok := s.Graph.FindLink(s.Graph.MustNode("FR"), s.Graph.MustNode("CH"))
	if !ok {
		log.Fatal("FR->CH missing")
	}
	chfr, _ := s.Graph.FindLink(s.Graph.MustNode("CH"), s.Graph.MustNode("FR"))
	s.Graph.SetDown(frch, true)
	s.Graph.SetDown(chfr, true)

	// Re-route and rebuild the routing matrix and loads.
	tbl := netsamp.ComputeRouting(s.Graph)
	matrix, err := netsamp.BuildRoutingMatrix(tbl, s.Pairs)
	if err != nil {
		log.Fatal(err)
	}
	demands := &netsamp.TrafficMatrix{}
	demands.Demands = append(demands.Demands, s.Demands.Demands...)
	for i := range demands.Demands {
		if demands.Demands[i].Pair.Name == "JANET-LU" {
			demands.Demands[i].Rate = 2
		}
	}
	loads, err := netsamp.LinkLoads(s.Graph, tbl, demands)
	if err != nil {
		log.Fatal(err)
	}
	// The candidate set changes with the routing: recompute it.
	after := *s
	after.Matrix = matrix
	after.MonitorLinks = nil
	for _, lid := range matrix.LinkSet() {
		if !s.Graph.Link(lid).Access {
			after.MonitorLinks = append(after.MonitorLinks, lid)
		}
	}
	after.Loads = loads

	planAfter, solAfter := solve(&after, loads, rates)
	fmt.Println("Plan after the anomaly + FR-CH failure (re-optimized):")
	printPlan(&after, planAfter)
	fmt.Printf("  worst-pair utility: %.4f\n\n", minOf(solAfter.Utilities))

	// Diff the monitor sets.
	fmt.Println("Monitor set changes:")
	for lid := range planAfter {
		if _, was := before[lid]; !was {
			fmt.Printf("  + activate %s\n", s.Graph.LinkName(lid))
		}
	}
	for lid := range before {
		if _, still := planAfter[lid]; !still {
			fmt.Printf("  - deactivate %s\n", s.Graph.LinkName(lid))
		}
	}

	// What if the operator had kept the old static plan? Evaluate the old
	// rates under the new routing/loads within the same budget envelope.
	oldRho := netsamp.EffectiveRates(matrix, before, nil)
	worst := 1.0
	for k, rho := range oldRho {
		u, err := netsamp.NewSRE(1 / (rates[k] * eval.Interval))
		if err != nil {
			log.Fatal(err)
		}
		if v := u.Value(rho); v < worst {
			worst = v
		}
	}
	fmt.Printf("\nStatic (stale) plan under the new conditions: worst-pair utility %.4f\n", worst)
	fmt.Printf("Re-optimized plan:                              worst-pair utility %.4f\n", minOf(solAfter.Utilities))
	fmt.Println("\nA static placement cannot follow traffic and routing dynamics —")
	fmt.Println("the paper's argument for optimizing activation network-wide.")
}

func minOf(u []float64) float64 {
	m := u[0]
	for _, v := range u {
		if v < m {
			m = v
		}
	}
	return m
}
