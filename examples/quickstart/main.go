// Quickstart: the complete netsamp workflow on a six-PoP toy backbone.
//
// We build a topology, route two OD pairs of interest over it, load the
// network with background traffic, and ask the optimizer which monitors
// to activate — and at what sampling rate — to estimate both OD pair
// sizes accurately within a budget of 5,000 sampled packets per
// 5-minute interval.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"netsamp"
)

func main() {
	// A small backbone: two core PoPs (A, B), two regional PoPs (C, D)
	// and two stubs (E, F).
	//
	//      A ===== B
	//      |  \    |
	//      C   \   D
	//      |    \  |
	//      E      F
	g := netsamp.NewGraph()
	a := g.AddNode("A")
	b := g.AddNode("B")
	c := g.AddNode("C")
	d := g.AddNode("D")
	e := g.AddNode("E")
	f := g.AddNode("F")
	ab, _ := g.AddDuplex(a, b, netsamp.OC48, 10)
	ac, _ := g.AddDuplex(a, c, netsamp.OC12, 10)
	_, _ = g.AddDuplex(a, f, netsamp.OC12, 45) // backup path, unused by SPF
	bd, _ := g.AddDuplex(b, d, netsamp.OC12, 10)
	ce, _ := g.AddDuplex(c, e, netsamp.OC3, 10)
	df, _ := g.AddDuplex(d, f, netsamp.OC3, 10)
	if err := g.Validate(); err != nil {
		log.Fatal(err)
	}

	// Route everything with an ISIS-like SPF.
	tbl := netsamp.ComputeRouting(g)

	// The measurement task: estimate the A→E and A→F traffic.
	pairs := []netsamp.ODPair{
		{Name: "A->E", Src: a, Dst: e},
		{Name: "A->F", Src: a, Dst: f},
	}
	matrix, err := netsamp.BuildRoutingMatrix(tbl, pairs)
	if err != nil {
		log.Fatal(err)
	}

	// Offered traffic: the two pairs of interest plus cross traffic that
	// loads the core far more than the stubs.
	demands := &netsamp.TrafficMatrix{Demands: []netsamp.Demand{
		{Pair: pairs[0], Rate: 900}, // A→E, 900 pkt/s
		{Pair: pairs[1], Rate: 150}, // A→F, 150 pkt/s
		{Pair: netsamp.ODPair{Name: "A->B", Src: a, Dst: b}, Rate: 30000},
		{Pair: netsamp.ODPair{Name: "B->A", Src: b, Dst: a}, Rate: 28000},
		{Pair: netsamp.ODPair{Name: "A->C", Src: a, Dst: c}, Rate: 7000},
		{Pair: netsamp.ODPair{Name: "B->D", Src: b, Dst: d}, Rate: 5000},
	}}
	loads, err := netsamp.LinkLoads(g, tbl, demands)
	if err != nil {
		log.Fatal(err)
	}

	// Candidate monitors: every link the pairs traverse could host one.
	candidates := []netsamp.LinkID{ab, ac, bd, ce, df}

	// Utilities are parameterized by E[1/S_k], the inverse OD size per
	// 5-minute measurement interval.
	const interval = 300.0
	inv := []float64{
		1 / (900 * interval),
		1 / (150 * interval),
	}

	const theta = 5000 // sampled packets per interval
	prob, _, err := netsamp.BuildProblem(netsamp.PlanInput{
		Matrix:       matrix,
		Loads:        loads,
		Candidates:   candidates,
		InvMeanSizes: inv,
		Budget:       netsamp.BudgetPerInterval(theta, interval),
	})
	if err != nil {
		log.Fatal(err)
	}
	sol, err := netsamp.Solve(prob, netsamp.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Optimal sampling plan (θ = %d packets / %1.0f s, converged=%v, %d iterations)\n\n",
		theta, interval, sol.Stats.Converged, sol.Stats.Iterations)
	fmt.Printf("%-8s %12s %12s %14s\n", "link", "rate p_i", "load pkt/s", "sampled pkt/s")
	rates := netsamp.RatesByLink(sol, candidates)
	for _, lid := range candidates {
		p := rates[lid]
		status := fmt.Sprintf("%12.6f %12.0f %14.2f", p, loads[lid], p*loads[lid])
		if p == 0 {
			status = fmt.Sprintf("%12s %12.0f %14s", "off", loads[lid], "-")
		}
		fmt.Printf("%-8s %s\n", g.LinkName(lid), status)
	}
	fmt.Printf("\n%-8s %14s %10s\n", "OD pair", "effective ρ", "utility")
	for k := range pairs {
		fmt.Printf("%-8s %14.6f %10.4f\n", pairs[k].Name, sol.Rho[k], sol.Utilities[k])
	}
	fmt.Println("\nNote how the optimizer avoids the heavily loaded core link A->B")
	fmt.Println("and samples the lightly loaded stub links C->E and D->F instead:")
	fmt.Println("the same packets can be seen where sampling them is cheap.")
}
