// Controller loop: operating the optimizer continuously.
//
// Re-optimizing every five minutes is what the paper argues for, but an
// operator also cares about configuration churn: activating and
// deactivating monitors on hundreds of routers every interval is
// operational noise. This example runs the monitoring controller
// (internal/control) over a simulated day segment on the GEANT scenario:
// loads follow a diurnal cycle with noise, and midway the FR-CH circuit
// fails. The controller smooths loads (EWMA) and applies activation
// hysteresis: rates are re-tuned every interval, but the monitor set
// only changes when it is genuinely worth it.
//
// Run with:
//
//	go run ./examples/controller-loop
package main

import (
	"fmt"
	"log"

	"netsamp"
	"netsamp/internal/control"
	"netsamp/internal/core"
	"netsamp/internal/rng"
)

func main() {
	s, err := netsamp.BuildGEANT(1)
	if err != nil {
		log.Fatal(err)
	}
	inv := s.UtilityParams(300)
	ctl, err := control.New(control.Options{
		Budget:      core.BudgetPerInterval(100000, 300),
		SmoothAlpha: 0.4,  // EWMA over ~2.5 intervals
		SwitchGain:  0.01, // change the set only for ≥1% objective gain
	})
	if err != nil {
		log.Fatal(err)
	}

	profile := netsamp.Diurnal{Period: 16, Trough: 0.6, Peak: 1.15, Noise: 0.08}
	r := rng.New(33)
	frch, _ := s.Graph.FindLink(s.Graph.MustNode("FR"), s.Graph.MustNode("CH"))
	chfr, _ := s.Graph.FindLink(s.Graph.MustNode("CH"), s.Graph.MustNode("FR"))

	fmt.Printf("%8s %9s %8s %12s %7s %s\n", "interval", "objective", "monitors", "set changed", "gain", "event")
	for t := 0; t < 16; t++ {
		event := ""
		if t == 8 {
			s.Graph.SetDown(frch, true)
			s.Graph.SetDown(chfr, true)
			event = "FR-CH fails"
		}
		tbl := netsamp.ComputeRouting(s.Graph)
		matrix, err := netsamp.BuildRoutingMatrix(tbl, s.Pairs)
		if err != nil {
			log.Fatal(err)
		}
		var candidates []netsamp.LinkID
		for _, lid := range matrix.LinkSet() {
			if !s.Graph.Link(lid).Access {
				candidates = append(candidates, lid)
			}
		}
		factor := profile.Factor(t, r)
		demands := s.Demands.Scale(factor)
		loads, err := netsamp.LinkLoads(s.Graph, tbl, demands)
		if err != nil {
			log.Fatal(err)
		}
		d, err := ctl.Step(matrix, loads, candidates, inv)
		if err != nil {
			log.Fatal(err)
		}
		changed := ""
		if d.SetChanged {
			changed = "yes"
		}
		fmt.Printf("%8d %9.4f %8d %12s %6.2f%% %s\n",
			t, d.Solution.Objective, len(d.Plan), changed, 100*d.Gain, event)
	}
	s.Graph.SetDown(frch, false)
	s.Graph.SetDown(chfr, false)
	fmt.Println("\nRates are re-tuned every interval; the monitor set stays put")
	fmt.Println("through load noise and only moves when routing or demand shifts")
	fmt.Println("make a different set clearly better.")
}
