// NetFlow pipeline: the deployed system end to end.
//
// The optimizer's output is a sampling plan; this example deploys it on
// the router-embedded monitoring substrate and runs the paper's whole
// measurement pipeline over real sockets:
//
//	flow generation → per-link sampled flow tables → UDP export with
//	sequence numbers → collector → 5-minute binning → renormalization
//	by 1/ρ → OD size estimates (paper, Section V-A).
//
// A small three-PoP network carries two OD pairs; the optimizer decides
// where to sample; each monitored link runs a netflow.FlowTable; records
// travel over loopback UDP; the estimator reports per-pair size
// estimates which are compared against the ground truth.
//
// Run with:
//
//	go run ./examples/netflow-pipeline
package main

import (
	"fmt"
	"log"
	"time"

	"netsamp"
	"netsamp/internal/netflow"
	"netsamp/internal/packet"
	"netsamp/internal/rng"
	"netsamp/internal/traffic"
)

const interval = 300 // seconds

func main() {
	// --- Network and plan ----------------------------------------------
	g := netsamp.NewGraph()
	a, b, c := g.AddNode("A"), g.AddNode("B"), g.AddNode("C")
	ab, _ := g.AddDuplex(a, b, netsamp.OC48, 10)
	bc, _ := g.AddDuplex(b, c, netsamp.OC12, 10)
	tbl := netsamp.ComputeRouting(g)
	pairs := []netsamp.ODPair{
		{Name: "A->B", Src: a, Dst: b},
		{Name: "A->C", Src: a, Dst: c},
	}
	matrix, err := netsamp.BuildRoutingMatrix(tbl, pairs)
	if err != nil {
		log.Fatal(err)
	}
	odRates := []float64{800, 120} // pkt/s
	demands := &netsamp.TrafficMatrix{Demands: []netsamp.Demand{
		{Pair: pairs[0], Rate: odRates[0]},
		{Pair: pairs[1], Rate: odRates[1]},
		{Pair: netsamp.ODPair{Name: "B->C", Src: b, Dst: c}, Rate: 300},
	}}
	loads, err := netsamp.LinkLoads(g, tbl, demands)
	if err != nil {
		log.Fatal(err)
	}
	candidates := []netsamp.LinkID{ab, bc}
	prob, _, err := netsamp.BuildProblem(netsamp.PlanInput{
		Matrix:       matrix,
		Loads:        loads,
		Candidates:   candidates,
		InvMeanSizes: []float64{1 / (odRates[0] * interval), 1 / (odRates[1] * interval)},
		Budget:       netsamp.BudgetPerInterval(20000, interval),
	})
	if err != nil {
		log.Fatal(err)
	}
	sol, err := netsamp.Solve(prob, netsamp.Options{})
	if err != nil {
		log.Fatal(err)
	}
	planRates := netsamp.RatesByLink(sol, candidates)
	fmt.Println("Sampling plan:")
	for _, lid := range candidates {
		fmt.Printf("  %-6s p=%.6f\n", g.LinkName(lid), planRates[lid])
	}

	// --- Deploy: collector, one exporter+flow table per monitored link --
	collector, err := netflow.NewCollector("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	master := rng.New(2026)
	type monitor struct {
		link  netsamp.LinkID
		table *netflow.FlowTable
		exp   *netflow.Exporter
	}
	var monitors []monitor
	for i, lid := range candidates {
		p := planRates[lid]
		if p == 0 {
			continue
		}
		cfg := netflow.DefaultConfig()
		cfg.SamplingRate = p
		exp, err := netflow.NewExporter(collector.Addr(), uint32(i+1))
		if err != nil {
			log.Fatal(err)
		}
		monitors = append(monitors, monitor{
			link:  lid,
			table: netflow.NewFlowTable(uint16(i+1), cfg, master.Split()),
			exp:   exp,
		})
	}

	// --- Estimator consuming collected batches --------------------------
	// OD pairs are distinguished by destination address: 10.0.0.<pair>.
	classify := func(k packet.FiveTuple) (int, bool) {
		switch k.Dst {
		case packet.AddrFrom4(10, 0, 0, 1):
			return 0, true
		case packet.AddrFrom4(10, 0, 0, 2):
			return 1, true
		}
		return 0, false
	}
	est, err := netflow.NewEstimator(interval, sol.Rho, classify)
	if err != nil {
		log.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		for batch := range collector.Batches() {
			est.AddBatch(batch)
		}
		close(done)
	}()

	// --- Generate one measurement interval of traffic -------------------
	// Each OD pair is decomposed into heavy-tailed flows; every packet of
	// a flow is offered to the flow table of each monitored link on the
	// pair's path (i.i.d. sampling per monitor).
	dist := traffic.NewParetoSize(60, 2.0, 500000)
	gen := rng.New(7)
	truth := make([]int64, len(pairs))
	for k := range pairs {
		fs := traffic.GenerateFlows(odRates[k], interval, dist, gen)
		truth[k] = fs.Total
		var onPath []monitor
		for _, m := range monitors {
			if matrix.Traverses(k, m.link) {
				onPath = append(onPath, m)
			}
		}
		dst := packet.AddrFrom4(10, 0, 0, byte(k+1))
		for fi, size := range fs.Sizes {
			key := packet.FiveTuple{
				Src:     packet.AddrFrom4(192, 168, byte(k), byte(fi%251)),
				Dst:     dst,
				SrcPort: uint16(1024 + fi%50000),
				DstPort: 443,
				Proto:   packet.ProtoTCP,
			}
			// Spread the flow's packets across the interval (1-second
			// resolution keeps the table's timeout machinery honest).
			perSec := size/interval + 1
			var sent int64
			for now := uint32(0); now < interval && sent < size; now++ {
				for j := int64(0); j < perSec && sent < size; j++ {
					for _, m := range onPath {
						if _, ev := m.table.Observe(key, 1500, now); ev != nil {
							if err := m.exp.Export(ev); err != nil {
								log.Fatal(err)
							}
						}
					}
					sent++
				}
			}
		}
	}
	// End of interval: expire and flush everything, then close exporters.
	var expected uint64
	for _, m := range monitors {
		if err := m.exp.Export(m.table.Flush()); err != nil {
			log.Fatal(err)
		}
		if err := m.exp.Close(); err != nil {
			log.Fatal(err)
		}
		st := m.table.Stats()
		expected += st.ExpiredFlows + st.EvictedFlows
		fmt.Printf("monitor %-6s observed %8d pkts, sampled %6d, exported %5d flow records\n",
			g.LinkName(m.link), st.ObservedPackets, st.SampledPackets, st.ExpiredFlows+st.EvictedFlows)
	}
	// Wait for the loopback datagrams to drain, then stop the collector.
	deadline := time.Now().Add(5 * time.Second)
	for collector.Stats().Records < expected && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	collector.Close()
	<-done
	cs := collector.Stats()
	fmt.Printf("collector: %d datagrams, %d records, %d lost records, %d malformed\n\n",
		cs.Datagrams, cs.Records, cs.LostRecords, cs.Malformed)

	// --- Report ---------------------------------------------------------
	fmt.Printf("%-8s %12s %12s %10s\n", "OD pair", "actual pkts", "estimated", "accuracy")
	for _, bin := range est.Estimates() {
		for k := range pairs {
			estimate := bin.Estimate[k]
			acc := 1 - abs(estimate-float64(truth[k]))/float64(truth[k])
			fmt.Printf("%-8s %12d %12.0f %10.4f\n", pairs[k].Name, truth[k], estimate, acc)
		}
	}
	fmt.Println("\nThe renormalized estimates X/ρ recover the OD sizes from a few")
	fmt.Println("thousand sampled packets — the paper's pipeline, over real UDP.")
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
